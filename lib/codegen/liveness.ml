open Import

(* Def/use and liveness analysis over an emitted instruction stream
   (one function), for the graph-coloring register allocator.

   Registers — physical or virtual — are mapped to dense node indices:
   0..15 are the machine registers, 16.. are the virtual registers in
   allocation order.  Sets of nodes are byte-per-node Bytes.t; the
   functions this runs on are small enough that the simplicity wins. *)

module Bits = struct
  type t = Bytes.t

  let make n = Bytes.make n '\000'
  let get b i = Bytes.unsafe_get b i <> '\000'
  let set b i = Bytes.unsafe_set b i '\001'
  let clear b i = Bytes.unsafe_set b i '\000'
  let copy = Bytes.copy
  let equal = Bytes.equal

  (* dst <- dst ∪ src *)
  let union_into ~src ~dst =
    for i = 0 to Bytes.length src - 1 do
      if get src i then set dst i
    done

  let iter f b =
    for i = 0 to Bytes.length b - 1 do
      if get b i then f i
    done
end

let nphys = 16

type block = {
  first : int;  (* index of the block's first instruction *)
  last : int;  (* inclusive *)
  mutable succs : int list;
  mutable preds : int list;
  mutable depth : int;  (* loop nesting depth, 0 outside any loop *)
}

type t = {
  insns : Insn.t array;
  vbase : int;
  nnodes : int;
  blocks : block array;
  block_of : int array;  (* instruction index -> block index *)
  def_use : (int list * int list) array;  (* per instruction *)
  live_out : Bits.t array;  (* per block *)
}

let node_of t r = if r >= t.vbase then nphys + (r - t.vbase) else r
let reg_of t n = if n >= nphys then t.vbase + (n - nphys) else n
let is_virtual_node n = n >= nphys

(* Which registers an instruction reads and writes, given the backend's
   last-operand classifier.  Memory bases and indexes are always reads;
   an autoincrement/autodecrement base is written back as well.  A call
   clobbers the result registers r0/r1 (the bank registers are
   callee-preserved under the PCC conventions both targets follow, and
   in virtual mode no bank register appears in the stream anyway). *)
let insn_def_use (ra : Backend.regalloc_info) (i : Insn.t) =
  match i with
  | Insn.Insn (m, ops) ->
    let n = List.length ops in
    let kind = if n = 0 then Backend.Dst_none else ra.Backend.ra_dst m in
    let defs = ref [] and uses = ref [] in
    List.iteri
      (fun idx (o : Mode.t) ->
        let is_dst = idx = n - 1 && kind <> Backend.Dst_none in
        match o with
        | Mode.Reg r ->
          if is_dst then begin
            defs := r :: !defs;
            if kind = Backend.Dst_readwrite then uses := r :: !uses
          end
          else uses := r :: !uses
        | Mode.Imm _ | Mode.Fimm _ -> ()
        | Mode.Mem mem ->
          List.iter (fun r -> uses := r :: !uses) (Mode.registers o);
          (match (mem.Mode.auto, mem.Mode.base) with
          | Some _, Some b -> defs := b :: !defs
          | _ -> ()))
      ops;
    (!defs, !uses)
  | Insn.Call _ -> ([ Regconv.r0; Regconv.r1 ], [])
  | Insn.Ret -> ([], [ Regconv.r0 ])
  | Insn.Branch _ | Insn.Lab _ | Insn.Comment _ -> ([], [])

(* natural-loop depths from DFS back edges *)
let loop_depths blocks =
  let n = Array.length blocks in
  let color = Array.make n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let back_edges = ref [] in
  let rec dfs b =
    color.(b) <- 1;
    List.iter
      (fun s ->
        if color.(s) = 0 then dfs s
        else if color.(s) = 1 then back_edges := (b, s) :: !back_edges)
      blocks.(b).succs;
    color.(b) <- 2
  in
  if n > 0 then dfs 0;
  List.iter
    (fun (tail, head) ->
      (* the natural loop of tail->head: head plus every block that
         reaches tail without passing through head *)
      let in_loop = Array.make n false in
      in_loop.(head) <- true;
      let rec add b =
        if not in_loop.(b) then begin
          in_loop.(b) <- true;
          List.iter add blocks.(b).preds
        end
      in
      add tail;
      Array.iteri
        (fun b inside -> if inside then blocks.(b).depth <- blocks.(b).depth + 1)
        in_loop)
    (List.rev !back_edges)

let analyze ~(ra : Backend.regalloc_info) ~(is_jump : string -> bool) ~vbase
    ~nvregs (insns : Insn.t array) =
  let n = Array.length insns in
  let nnodes = nphys + nvregs in
  let def_use = Array.map (insn_def_use ra) insns in
  (* leaders *)
  let leader = Array.make (max n 1) false in
  if n > 0 then leader.(0) <- true;
  let labels = Hashtbl.create 16 in
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Lab l ->
        leader.(i) <- true;
        Hashtbl.replace labels l i
      | Insn.Branch _ | Insn.Ret -> if i + 1 < n then leader.(i + 1) <- true
      | _ -> ())
    insns;
  let block_of = Array.make (max n 1) 0 in
  let firsts = ref [] in
  for i = n - 1 downto 0 do
    if leader.(i) then firsts := i :: !firsts
  done;
  let firsts = Array.of_list !firsts in
  let nblocks = Array.length firsts in
  let blocks =
    Array.init nblocks (fun b ->
        let first = firsts.(b) in
        let last = if b + 1 < nblocks then firsts.(b + 1) - 1 else n - 1 in
        for i = first to last do
          block_of.(i) <- b
        done;
        { first; last; succs = []; preds = []; depth = 0 })
  in
  (* successors *)
  Array.iteri
    (fun b blk ->
      let fallthrough () = if b + 1 < nblocks then [ b + 1 ] else [] in
      blk.succs <-
        (match insns.(blk.last) with
        | Insn.Ret -> []
        | Insn.Branch (m, l) -> (
          let target =
            match Hashtbl.find_opt labels l with
            | Some i -> [ block_of.(i) ]
            | None -> []  (* label outside this stream *)
          in
          if is_jump m then target else target @ fallthrough ())
        | _ -> fallthrough ()))
    blocks;
  Array.iteri
    (fun b blk -> List.iter (fun s -> blocks.(s).preds <- b :: blocks.(s).preds) blk.succs)
    blocks;
  Array.iter (fun blk -> blk.preds <- List.rev blk.preds) blocks;
  loop_depths blocks;
  let t =
    {
      insns;
      vbase;
      nnodes;
      blocks;
      block_of;
      def_use;
      live_out = Array.init nblocks (fun _ -> Bits.make nnodes);
    }
  in
  (* per-block use (upward-exposed) and def sets *)
  let use_b = Array.init nblocks (fun _ -> Bits.make nnodes) in
  let def_b = Array.init nblocks (fun _ -> Bits.make nnodes) in
  Array.iteri
    (fun b blk ->
      for i = blk.first to blk.last do
        let defs, uses = def_use.(i) in
        List.iter
          (fun r ->
            let nd = node_of t r in
            if not (Bits.get def_b.(b) nd) then Bits.set use_b.(b) nd)
          uses;
        List.iter (fun r -> Bits.set def_b.(b) (node_of t r)) defs
      done)
    blocks;
  let live_in = Array.init nblocks (fun _ -> Bits.make nnodes) in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = nblocks - 1 downto 0 do
      let out = t.live_out.(b) in
      List.iter
        (fun s -> Bits.union_into ~src:live_in.(s) ~dst:out)
        t.blocks.(b).succs;
      let inb = Bits.copy out in
      Bits.iter (fun nd -> if Bits.get def_b.(b) nd then Bits.clear inb nd) out;
      Bits.union_into ~src:use_b.(b) ~dst:inb;
      if not (Bits.equal inb live_in.(b)) then begin
        live_in.(b) <- inb;
        changed := true
      end
    done
  done;
  t

let depth_at t i = t.blocks.(t.block_of.(i)).depth
