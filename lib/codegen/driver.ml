open Import

type regalloc = Stack | Color

let regalloc_name = function Stack -> "stack" | Color -> "color"

let regalloc_of_string = function
  | "stack" -> Some Stack
  | "color" -> Some Color
  | _ -> None

type options = {
  grammar : Grammar_def.options;
  transform : Transform.options;
  idioms : bool;
  peephole : bool;
  regalloc : regalloc;
  heat : (int * int) list;
}

let default_options =
  {
    grammar = Grammar_def.default;
    transform = Transform.default_options;
    idioms = true;
    peephole = false;
    regalloc = Stack;
    heat = [];
  }

(* virtual registers are numbered from here in color mode; well above
   any physical register number *)
let vreg_base = 64

type tables = { t_engine : Matcher.engine; t_backend : Backend.t }

let engine t = t.t_engine
let backend t = t.t_backend
let grammar t = t.t_engine.Matcher.eng_grammar
let of_engine ~backend e = { t_engine = e; t_backend = backend }

(* The production representation is the comb-packed one; the dense
   tables exist as an intermediate (and for differential testing via
   Matcher.engine). *)
let build_tables ?(backend = Backend.vax) gopts =
  let g = backend.Backend.grammar_of gopts in
  {
    t_engine = Matcher.packed_engine ~grammar:g (Gg_tablegen.Cache.build g);
    t_backend = backend;
  }

let cached_tables ?dir ?(backend = Backend.vax) gopts =
  let g = backend.Backend.grammar_of gopts in
  let target = Backend.name backend in
  {
    t_engine =
      Matcher.packed_engine ~grammar:g
        (Gg_tablegen.Cache.load_or_build ?dir ~target g);
    t_backend = backend;
  }

let default_tables = lazy (build_tables Grammar_def.default)

type compiled_func = {
  cf_name : string;
  cf_insns : Insn.t list;
  cf_frame_size : int;
  cf_prov : (int * int list * string) list;
      (* per-instruction (source line, production ids, marker); the
         marker is "" normally, "spill"/"reload" on register-allocator
         traffic.  Empty unless provenance was enabled, or when the
         peephole pass rewrote the instruction list out from under it *)
}

type output = {
  assembly : string;
  funcs : compiled_func list;
  program : Tree.program;
}

let compile_stmts (tables : tables) sem (body : Tree.stmt list) =
  let bk = tables.t_backend in
  let cb = bk.Backend.callbacks sem (grammar tables) in
  List.iter
    (fun (s : Tree.stmt) ->
      match s with
      | Tree.Stree tree ->
        let match_tree () =
          let outcome = Matcher.run_tree_engine tables.t_engine cb tree in
          (match outcome.Matcher.value with
          | Desc.Done -> ()
          | Desc.D d ->
            (* an expression evaluated for its side effects only *)
            Regmgr.release (Semantics.regmgr sem) d
          | Desc.Node _ -> failwith "matcher returned a raw node");
          Regmgr.assert_clean (Semantics.regmgr sem)
        in
        if !Trace.enabled then Trace.span ~cat:"tree" "match.tree" match_tree
        else match_tree ();
        Semantics.end_tree sem
      | Tree.Slabel l -> Semantics.emit sem (Insn.Lab l)
      | Tree.Sjump l -> Semantics.emit sem (bk.Backend.jump l)
      | Tree.Sret -> Semantics.emit sem Insn.Ret
      | Tree.Scall (f, n, _) -> Semantics.emit sem (Insn.Call (f, n))
      | Tree.Scomment c -> Semantics.emit sem (Insn.Comment c)
      | Tree.Sline n -> Semantics.set_line sem n)
    body

(* allocatable registers appearing as Dreg leaves are register
   variables: withhold them from the register manager *)
let reserved_registers ~alloc_regs (f : Tree.func) =
  let add acc t =
    Tree.fold
      (fun acc node ->
        match node with
        | Tree.Dreg (_, r) | Tree.Autoinc (_, r) | Tree.Autodec (_, r)
          when List.mem r alloc_regs && not (List.mem r acc) ->
          r :: acc
        | _ -> acc)
      acc t
  in
  List.fold_left
    (fun acc s -> match s with Tree.Stree t -> add acc t | _ -> acc)
    [] f.Tree.body

let compile_func ?(options = default_options) tables (f : Tree.func) =
  Trace.span ~cat:"function" f.Tree.fname @@ fun () ->
  let backend = tables.t_backend in
  let alloc_regs = backend.Backend.alloc_regs in
  let reserved = reserved_registers ~alloc_regs f in
  let pool = List.length alloc_regs - List.length reserved in
  let leaf_need = backend.Backend.leaf_need in
  let spill_limit =
    (* on a load/store target every live value sits in a register and
       doubles occupy pairs, so budget at half the bank *)
    if leaf_need > 0 then max 2 ((pool / 2) - 1) else max 2 (pool - 1)
  in
  let tr =
    Trace.phase "phase1.transform" (fun () ->
        Transform.run ~options:options.transform ~spill_limit ~leaf_need f)
  in
  let frame =
    Frame.create ~locals_size:f.Tree.locals_size ~temps:tr.Transform.temps
  in
  let sem =
    Semantics.create ~idioms:options.idioms ~reserved ~allocatable:alloc_regs
      ?move:backend.Backend.move
      ?vreg_base:(match options.regalloc with Color -> Some vreg_base | Stack -> None)
      ?explain:
        (* heat weighting needs per-instruction provenance even when
           the user did not ask for --explain *)
        (if options.regalloc = Color && options.heat <> [] then Some true
         else None)
      frame
  in
  Trace.phase "phase2.match" (fun () ->
      compile_stmts tables sem tr.Transform.func.Tree.body);
  let insns = Semantics.output sem in
  let prov = Semantics.provenance sem in
  let insns, prov, ra_stats =
    match options.regalloc with
    | Stack -> (insns, prov, None)
    | Color ->
      let vinfo =
        match Regmgr.vreg_summary (Semantics.regmgr sem) with
        | Some v -> v
        | None -> assert false
      in
      let bank = List.filter (fun r -> not (List.mem r reserved)) alloc_regs in
      let insns, prov, st =
        Trace.phase "phase3.regalloc" (fun () ->
            Color.run ~backend ~bank ~frame ~vinfo ~heat:options.heat ~prov
              insns)
      in
      (* provenance forced on for heat weighting only is internal:
         don't surface it unless the user asked *)
      let prov = if !Profile.provenance_enabled then prov else [] in
      (insns, prov, Some st)
  in
  let insns, prov =
    match tables.t_backend.Backend.peephole with
    | Some pass when options.peephole ->
      (* the peephole pass deletes and rewrites instructions, so the
         provenance list is no longer parallel to the output: drop it *)
      (Trace.phase "peephole" (fun () -> pass insns), [])
    | _ -> (insns, prov)
  in
  if !Metrics.enabled then begin
    Metrics.observe Metrics.insns_per_func (List.length insns);
    let spills =
      match ra_stats with
      | Some st -> st.Color.spilled_ranges
      | None -> Regmgr.spills (Semantics.regmgr sem)
    in
    Metrics.observe Metrics.spills_per_func spills
  end;
  {
    cf_name = f.Tree.fname;
    cf_insns = insns;
    cf_frame_size = Frame.size frame;
    cf_prov = prov;
  }

let render_func (bk : Backend.t) buf (cf : compiled_func) =
  Buffer.add_string buf (Fmt.str "\t.globl\t%s\n" cf.cf_name);
  Buffer.add_string buf (cf.cf_name ^ ":\n");
  if cf.cf_frame_size > 0 then
    Buffer.add_string buf (bk.Backend.prologue cf.cf_frame_size);
  List.iter
    (fun i -> Buffer.add_string buf (bk.Backend.render_insn i ^ "\n"))
    cf.cf_insns;
  (* a fall-off-the-end return for functions without a trailing Sret *)
  Buffer.add_string buf "\tret\n"

(* --explain rendering: every instruction line carries a comment with
   the source line and the chain of production ids whose reductions
   produced it, plus the note (assembly template) of the production
   that finally emitted it. *)
let render_func_explained (bk : Backend.t) buf g (cf : compiled_func) =
  Buffer.add_string buf (Fmt.str "\t.globl\t%s\n" cf.cf_name);
  Buffer.add_string buf (cf.cf_name ^ ":\n");
  if cf.cf_frame_size > 0 then
    Buffer.add_string buf (bk.Backend.prologue cf.cf_frame_size);
  let prov = Array.of_list cf.cf_prov in
  List.iteri
    (fun i insn ->
      Buffer.add_string buf (bk.Backend.render_insn insn);
      (if i < Array.length prov then
         let line, pids, mark = prov.(i) in
         match (pids, mark) with
         | [], "" -> ()
         | _ ->
           let ids =
             String.concat ","
               (List.map (fun id -> "p" ^ string_of_int id) pids)
           in
           let note =
             match pids with
             | [] -> ""
             | _ -> (
               let emitter = List.nth pids (List.length pids - 1) in
               match (Grammar.production g emitter).Grammar.note with
               | "" -> ""
               | n -> " ; " ^ n)
           in
           let mark = if mark = "" then "" else " ; " ^ mark in
           Buffer.add_string buf (Fmt.str "\t# L%d %s%s%s" line ids note mark));
      Buffer.add_char buf '\n')
    cf.cf_insns;
  Buffer.add_string buf "\tret\n"

let render_explained (tables : tables) out =
  let g = grammar tables in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, _, size) ->
      Buffer.add_string buf (Fmt.str "\t.comm\t%s,%d\n" name size))
    out.program.Tree.globals;
  List.iter (render_func_explained tables.t_backend buf g) out.funcs;
  Buffer.contents buf

let render_program (bk : Backend.t) (p : Tree.program) funcs =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, _, size) ->
      Buffer.add_string buf (Fmt.str "\t.comm\t%s,%d\n" name size))
    p.Tree.globals;
  List.iter (fun cf -> render_func bk buf cf) funcs;
  Buffer.contents buf

let compile_program ?(options = default_options) ?tables ?(jobs = 1)
    ?(oversubscribe = false) (p : Tree.program) =
  (* the tables (and their lazy cell) are resolved before any worker
     domain exists; workers only ever read them *)
  let tables =
    match tables with
    | Some t -> t
    | None ->
      if options.grammar = Grammar_def.default then Lazy.force default_tables
      else build_tables options.grammar
  in
  let funcs =
    Parallel.map ~oversubscribe ~jobs (compile_func ~options tables)
      p.Tree.funcs
  in
  { assembly = render_program tables.t_backend p funcs; funcs; program = p }

let singleton_func tree =
  {
    Tree.fname = "snippet";
    formals = [];
    ret_type = Dtype.Long;
    locals_size = 0;
    body = [ Tree.Stree tree ];
  }

let compile_tree ?(options = default_options) ?tables tree =
  let tables =
    match tables with Some t -> t | None -> Lazy.force default_tables
  in
  (compile_func ~options tables (singleton_func tree)).cf_insns

let compile_tree_traced ?(options = default_options) ?tables tree =
  let tables =
    match tables with Some t -> t | None -> Lazy.force default_tables
  in
  let f = singleton_func tree in
  let tr = Transform.run ~options:options.transform f in
  let frame = Frame.create ~locals_size:0 ~temps:tr.Transform.temps in
  let sem =
    Semantics.create ~idioms:options.idioms
      ?move:tables.t_backend.Backend.move frame
  in
  let cb = tables.t_backend.Backend.callbacks sem (grammar tables) in
  let traces = ref [] in
  List.iter
    (fun (s : Tree.stmt) ->
      match s with
      | Tree.Stree t ->
        let outcome =
          Matcher.run_tree_engine ~trace:true tables.t_engine cb t
        in
        traces := outcome.Matcher.trace :: !traces
      | _ -> ())
    tr.Transform.func.Tree.body;
  (Semantics.output sem, List.concat (List.rev !traces))

let total_cycles ?(backend = Backend.vax) out =
  List.fold_left
    (fun acc cf ->
      acc
      + List.fold_left (fun a i -> a + backend.Backend.insn_cycles i) 0
          cf.cf_insns
      + backend.Backend.prologue_cycles)
    0 out.funcs

let total_lines out =
  List.fold_left
    (fun acc cf -> acc + Insn.count_lines cf.cf_insns + 3
      (* .globl, entry label, ret *))
    0 out.funcs
  + List.length out.program.Tree.globals
