open Import

type options = {
  grammar : Grammar_def.options;
  transform : Transform.options;
  idioms : bool;
  peephole : bool;
}

let default_options =
  {
    grammar = Grammar_def.default;
    transform = Transform.default_options;
    idioms = true;
    peephole = false;
  }

type tables = Matcher.engine

let grammar (t : tables) = t.Matcher.eng_grammar

(* The production representation is the comb-packed one; the dense
   tables exist as an intermediate (and for differential testing via
   Matcher.engine). *)
let build_tables gopts =
  let g = Grammar_def.grammar gopts in
  Matcher.packed_engine ~grammar:g (Gg_tablegen.Cache.build g)

let cached_tables ?dir gopts =
  let g = Grammar_def.grammar gopts in
  Matcher.packed_engine ~grammar:g (Gg_tablegen.Cache.load_or_build ?dir g)

let default_tables = lazy (build_tables Grammar_def.default)

type compiled_func = {
  cf_name : string;
  cf_insns : Insn.t list;
  cf_frame_size : int;
  cf_prov : (int * int list) list;
      (* per-instruction (source line, production ids); empty unless
         provenance was enabled, or when the peephole pass rewrote the
         instruction list out from under it *)
}

type output = {
  assembly : string;
  funcs : compiled_func list;
  program : Tree.program;
}

let compile_stmts (tables : tables) sem (body : Tree.stmt list) =
  let cb = Semantics.callbacks sem (grammar tables) in
  List.iter
    (fun (s : Tree.stmt) ->
      match s with
      | Tree.Stree tree ->
        let match_tree () =
          let outcome = Matcher.run_tree_engine tables cb tree in
          (match outcome.Matcher.value with
          | Desc.Done -> ()
          | Desc.D d ->
            (* an expression evaluated for its side effects only *)
            Regmgr.release (Semantics.regmgr sem) d
          | Desc.Node _ -> failwith "matcher returned a raw node");
          Regmgr.assert_clean (Semantics.regmgr sem)
        in
        if !Trace.enabled then Trace.span ~cat:"tree" "match.tree" match_tree
        else match_tree ();
        Semantics.end_tree sem
      | Tree.Slabel l -> Semantics.emit sem (Insn.Lab l)
      | Tree.Sjump l -> Semantics.emit sem (Insn.Branch ("jbr", l))
      | Tree.Sret -> Semantics.emit sem Insn.Ret
      | Tree.Scall (f, n, _) -> Semantics.emit sem (Insn.Call (f, n))
      | Tree.Scomment c -> Semantics.emit sem (Insn.Comment c)
      | Tree.Sline n -> Semantics.set_line sem n)
    body

(* allocatable registers appearing as Dreg leaves are register
   variables: withhold them from the register manager *)
let reserved_registers (f : Tree.func) =
  let add acc t =
    Tree.fold
      (fun acc node ->
        match node with
        | Tree.Dreg (_, r) | Tree.Autoinc (_, r) | Tree.Autodec (_, r)
          when List.mem r Regconv.allocatable && not (List.mem r acc) ->
          r :: acc
        | _ -> acc)
      acc t
  in
  List.fold_left
    (fun acc s -> match s with Tree.Stree t -> add acc t | _ -> acc)
    [] f.Tree.body

let compile_func ?(options = default_options) tables (f : Tree.func) =
  Trace.span ~cat:"function" f.Tree.fname @@ fun () ->
  let reserved = reserved_registers f in
  let pool = List.length Regconv.allocatable - List.length reserved in
  let tr =
    Trace.phase "phase1.transform" (fun () ->
        Transform.run ~options:options.transform
          ~spill_limit:(max 2 (pool - 1)) f)
  in
  let frame =
    Frame.create ~locals_size:f.Tree.locals_size ~temps:tr.Transform.temps
  in
  let sem = Semantics.create ~idioms:options.idioms ~reserved frame in
  Trace.phase "phase2.match" (fun () ->
      compile_stmts tables sem tr.Transform.func.Tree.body);
  let insns = Semantics.output sem in
  let prov = Semantics.provenance sem in
  let insns, prov =
    if options.peephole then
      (* the peephole pass deletes and rewrites instructions, so the
         provenance list is no longer parallel to the output: drop it *)
      (Trace.phase "peephole" (fun () -> fst (Peephole.optimize insns)), [])
    else (insns, prov)
  in
  if !Metrics.enabled then
    Metrics.observe Metrics.insns_per_func (List.length insns);
  {
    cf_name = f.Tree.fname;
    cf_insns = insns;
    cf_frame_size = Frame.size frame;
    cf_prov = prov;
  }

let render_func buf (cf : compiled_func) =
  Buffer.add_string buf (Fmt.str "\t.globl\t%s\n" cf.cf_name);
  Buffer.add_string buf (cf.cf_name ^ ":\n");
  if cf.cf_frame_size > 0 then
    Buffer.add_string buf (Fmt.str "\tsubl2\t$%d,sp\n" cf.cf_frame_size);
  List.iter
    (fun i -> Buffer.add_string buf (Insn.assembly i ^ "\n"))
    cf.cf_insns;
  (* a fall-off-the-end return for functions without a trailing Sret *)
  Buffer.add_string buf "\tret\n"

(* --explain rendering: every instruction line carries a comment with
   the source line and the chain of production ids whose reductions
   produced it, plus the note (assembly template) of the production
   that finally emitted it. *)
let render_func_explained buf g (cf : compiled_func) =
  Buffer.add_string buf (Fmt.str "\t.globl\t%s\n" cf.cf_name);
  Buffer.add_string buf (cf.cf_name ^ ":\n");
  if cf.cf_frame_size > 0 then
    Buffer.add_string buf (Fmt.str "\tsubl2\t$%d,sp\n" cf.cf_frame_size);
  let prov = Array.of_list cf.cf_prov in
  List.iteri
    (fun i insn ->
      Buffer.add_string buf (Insn.assembly insn);
      (if i < Array.length prov then
         let line, pids = prov.(i) in
         match pids with
         | [] -> ()
         | _ ->
           let ids =
             String.concat ","
               (List.map (fun id -> "p" ^ string_of_int id) pids)
           in
           let emitter = List.nth pids (List.length pids - 1) in
           let note =
             match (Grammar.production g emitter).Grammar.note with
             | "" -> ""
             | n -> " ; " ^ n
           in
           Buffer.add_string buf (Fmt.str "\t# L%d %s%s" line ids note));
      Buffer.add_char buf '\n')
    cf.cf_insns;
  Buffer.add_string buf "\tret\n"

let render_explained (tables : tables) out =
  let g = grammar tables in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, _, size) ->
      Buffer.add_string buf (Fmt.str "\t.comm\t%s,%d\n" name size))
    out.program.Tree.globals;
  List.iter (render_func_explained buf g) out.funcs;
  Buffer.contents buf

let render_program (p : Tree.program) funcs =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, _, size) ->
      Buffer.add_string buf (Fmt.str "\t.comm\t%s,%d\n" name size))
    p.Tree.globals;
  List.iter (fun cf -> render_func buf cf) funcs;
  Buffer.contents buf

let compile_program ?(options = default_options) ?tables ?(jobs = 1)
    ?(oversubscribe = false) (p : Tree.program) =
  (* the tables (and their lazy cell) are resolved before any worker
     domain exists; workers only ever read them *)
  let tables =
    match tables with
    | Some t -> t
    | None ->
      if options.grammar = Grammar_def.default then Lazy.force default_tables
      else build_tables options.grammar
  in
  let funcs =
    Parallel.map ~oversubscribe ~jobs (compile_func ~options tables)
      p.Tree.funcs
  in
  { assembly = render_program p funcs; funcs; program = p }

let singleton_func tree =
  {
    Tree.fname = "snippet";
    formals = [];
    ret_type = Dtype.Long;
    locals_size = 0;
    body = [ Tree.Stree tree ];
  }

let compile_tree ?(options = default_options) ?tables tree =
  let tables =
    match tables with Some t -> t | None -> Lazy.force default_tables
  in
  (compile_func ~options tables (singleton_func tree)).cf_insns

let compile_tree_traced ?(options = default_options) ?tables tree =
  let tables =
    match tables with Some t -> t | None -> Lazy.force default_tables
  in
  let f = singleton_func tree in
  let tr = Transform.run ~options:options.transform f in
  let frame = Frame.create ~locals_size:0 ~temps:tr.Transform.temps in
  let sem = Semantics.create ~idioms:options.idioms frame in
  let cb = Semantics.callbacks sem (grammar tables) in
  let traces = ref [] in
  List.iter
    (fun (s : Tree.stmt) ->
      match s with
      | Tree.Stree t ->
        let outcome = Matcher.run_tree_engine ~trace:true tables cb t in
        traces := outcome.Matcher.trace :: !traces
      | _ -> ())
    tr.Transform.func.Tree.body;
  (Semantics.output sem, List.concat (List.rev !traces))

let total_cycles out =
  List.fold_left
    (fun acc cf -> acc + Insn.total_cycles cf.cf_insns + 2 (* prologue *))
    0 out.funcs

let total_lines out =
  List.fold_left
    (fun acc cf -> acc + Insn.count_lines cf.cf_insns + 3
      (* .globl, entry label, ret *))
    0 out.funcs
  + List.length out.program.Tree.globals
