open Import

type target = Vax | Risc

let target_name = function Vax -> "vax" | Risc -> "risc"

let target_of_string = function
  | "vax" -> Some Vax
  | "risc" -> Some Risc
  | _ -> None

let all_targets = [ Vax; Risc ]

(* how an instruction treats its last operand, as far as a register
   allocator is concerned *)
type dst_kind = Dst_none | Dst_write | Dst_readwrite

type regalloc_info = {
  ra_dst : string -> dst_kind;
  ra_spill_in_place : bool;
}

type t = {
  target : target;
  grammar_of : Grammar_def.options -> Grammar.t;
  default_grammar : Grammar.t Lazy.t;
  move : (Dtype.t -> src:Mode.t -> dst:Mode.t -> Insn.t list) option;
  callbacks : Semantics.t -> Grammar.t -> Desc.sval Matcher.callbacks;
  jump : Label.t -> Insn.t;
  prologue : int -> string;
  prologue_cycles : int;
  render_insn : Insn.t -> string;
  insn_cycles : Insn.t -> int;
  peephole : (Insn.t list -> Insn.t list) option;
  alloc_regs : int list;
  leaf_need : int;
  regalloc : regalloc_info;
}

let name b = target_name b.target

let has_prefix p m =
  String.length m >= String.length p && String.sub m 0 (String.length p) = p

(* The VAX classifier.  Compares and tests write only the condition
   codes; pushes write through sp's autodecrement, which the operand
   walk already sees.  A '2'-suffix instruction folds its destination
   into the second source (addl2 a,d == d += a), as do the inc/dec
   range idioms; everything else —
   mov/mova/mneg/mcom/cvt/clr, the '3' forms, ashl — overwrites its
   last operand. *)
let vax_dst m =
  if has_prefix "cmp" m || has_prefix "tst" m || has_prefix "push" m then
    Dst_none
  else if
    String.length m > 0 && m.[String.length m - 1] = '2'
    || has_prefix "inc" m || has_prefix "dec" m
  then Dst_readwrite
  else Dst_write

let vax =
  {
    target = Vax;
    grammar_of = Grammar_def.grammar;
    default_grammar = Grammar_def.default_grammar;
    move = None;
    callbacks = Semantics.callbacks;
    jump = (fun l -> Insn.Branch ("jbr", l));
    prologue = (fun size -> Fmt.str "\tsubl2\t$%d,sp\n" size);
    prologue_cycles = 2;
    render_insn = Insn.assembly;
    insn_cycles = Insn.cycles;
    peephole = Some (fun insns -> fst (Peephole.optimize insns));
    alloc_regs = Regconv.allocatable;
    leaf_need = 0;
    regalloc = { ra_dst = vax_dst; ra_spill_in_place = true };
  }
