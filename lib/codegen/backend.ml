open Import

type target = Vax | Risc

let target_name = function Vax -> "vax" | Risc -> "risc"

let target_of_string = function
  | "vax" -> Some Vax
  | "risc" -> Some Risc
  | _ -> None

let all_targets = [ Vax; Risc ]

type t = {
  target : target;
  grammar_of : Grammar_def.options -> Grammar.t;
  default_grammar : Grammar.t Lazy.t;
  move : (Dtype.t -> src:Mode.t -> dst:Mode.t -> Insn.t list) option;
  callbacks : Semantics.t -> Grammar.t -> Desc.sval Matcher.callbacks;
  jump : Label.t -> Insn.t;
  prologue : int -> string;
  prologue_cycles : int;
  render_insn : Insn.t -> string;
  insn_cycles : Insn.t -> int;
  peephole : (Insn.t list -> Insn.t list) option;
  alloc_regs : int list;
  leaf_need : int;
}

let name b = target_name b.target

let vax =
  {
    target = Vax;
    grammar_of = Grammar_def.grammar;
    default_grammar = Grammar_def.default_grammar;
    move = None;
    callbacks = Semantics.callbacks;
    jump = (fun l -> Insn.Branch ("jbr", l));
    prologue = (fun size -> Fmt.str "\tsubl2\t$%d,sp\n" size);
    prologue_cycles = 2;
    render_insn = Insn.assembly;
    insn_cycles = Insn.cycles;
    peephole = Some (fun insns -> fst (Peephole.optimize insns));
    alloc_regs = Regconv.allocatable;
    leaf_need = 0;
  }
