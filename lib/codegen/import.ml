(* Short aliases for modules used throughout this library. *)
module Dtype = Gg_ir.Dtype
module Op = Gg_ir.Op
module Tree = Gg_ir.Tree
module Label = Gg_ir.Label
module Regconv = Gg_ir.Regconv
module Termname = Gg_ir.Termname
module Grammar = Gg_grammar.Grammar
module Symtab = Gg_grammar.Symtab
module Action = Gg_grammar.Action
module Tables = Gg_tablegen.Tables
module Matcher = Gg_matcher.Matcher
module Profile = Gg_profile.Profile
module Mode = Gg_vax.Mode
module Insn = Gg_vax.Insn
module Insn_table = Gg_vax.Insn_table
module Grammar_def = Gg_vax.Grammar_def
module Transform = Gg_transform.Transform
