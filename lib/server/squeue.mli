(** A bounded, multi-producer multi-consumer blocking queue.

    The server's backpressure primitive: the accept thread produces
    accepted connections, the {!Gg_codegen.Parallel} worker domains
    consume them.  {!try_push} never blocks — a full queue is the
    signal to answer {!Protocol.Retry_after} instead of accepting
    unbounded work.  {!pop} blocks until an item or {!close}; after
    [close], remaining items are still drained (graceful shutdown
    serves everything already accepted) and only then does [pop] return
    [None]. *)

type 'a t

val create : capacity:int -> 'a t

(** Non-blocking; [false] when the queue is full or closed. *)
val try_push : 'a t -> 'a -> bool

(** Blocks until an item is available or the queue is closed and
    drained ([None]). *)
val pop : 'a t -> 'a option

(** Idempotent.  Wakes every blocked {!pop}; no further pushes are
    accepted, already-queued items remain poppable. *)
val close : 'a t -> unit

(** Current occupancy (racy by nature; for metrics and tests). *)
val length : 'a t -> int
