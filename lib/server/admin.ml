open Import

(* The ops plane: a second Unix-domain socket, deliberately not the
   compile protocol.  One connection is one line-oriented command and
   one reply — text in, JSON (or Prometheus text) out — so an operator
   can drive it with nothing but a shell and a socket tool, and a
   wedged compile plane never blocks a health probe (the admin thread
   shares nothing with the worker pool but the metrics shards). *)

let max_command = 256

type t = {
  socket_path : string;
  sock : Unix.file_descr;
  handle : string -> string;
  shutdown : bool Atomic.t;
  mutable thread : Thread.t option;
  mutable stopped : bool;
}

(* read up to the first newline (the command), bounded; admin peers are
   local tools, but a misbehaving one must not hold the thread *)
let read_command fd =
  let b = Buffer.create 32 in
  let buf = Bytes.create 64 in
  let rec go () =
    if Buffer.length b > max_command then Buffer.contents b
    else
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> Buffer.contents b
      | n -> (
        match Bytes.index_opt (Bytes.sub buf 0 n) '\n' with
        | Some i ->
          Buffer.add_subbytes b buf 0 i;
          Buffer.contents b
        | None ->
          Buffer.add_subbytes b buf 0 n;
          go ())
      | exception Unix.Unix_error _ -> Buffer.contents b
  in
  String.trim (go ())

let write_all fd s =
  let n = String.length s in
  let pos = ref 0 in
  try
    while !pos < n do
      pos := !pos + Unix.write_substring fd s !pos (n - !pos)
    done
  with Unix.Unix_error _ -> ()

let serve_one handle fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2. with Unix.Unix_error _ -> ());
  let cmd = read_command fd in
  write_all fd (handle cmd);
  try Unix.close fd with Unix.Unix_error _ -> ()

let loop t =
  while not (Atomic.get t.shutdown) do
    match Unix.select [ t.sock ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept ~cloexec:true t.sock with
      | exception Unix.Unix_error _ -> ()
      | fd, _ -> serve_one t.handle fd)
  done

let start ~socket_path ~handle =
  if Sys.file_exists socket_path then (
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (match Unix.connect probe (Unix.ADDR_UNIX socket_path) with
    | () ->
      Unix.close probe;
      failwith (Fmt.str "an admin endpoint is already serving %s" socket_path)
    | exception Unix.Unix_error _ -> Unix.close probe);
    try Sys.remove socket_path with Sys_error _ -> ());
  let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind sock (Unix.ADDR_UNIX socket_path);
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      socket_path;
      sock;
      handle;
      shutdown = Atomic.make false;
      thread = None;
      stopped = false;
    }
  in
  t.thread <- Some (Thread.create loop t);
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.shutdown true;
    Option.iter Thread.join t.thread;
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    try Sys.remove t.socket_path with Sys_error _ -> ()
  end

(* -- the standard command set --------------------------------------------- *)

let default_handler ~server ~drain cmd =
  match cmd with
  | "stats" ->
    (* the same document the shutdown sidecar writes — one source of
       truth, so a live snapshot and the post-run file agree exactly *)
    Metrics.to_json ()
  | "health" ->
    Printf.sprintf "{\"status\":\"ok\",\"served\":%d,\"queue_depth\":%d}\n"
      (Server.served server)
      (Server.queue_depth server)
  | "metrics" -> Metrics.to_prometheus ()
  | "flight" -> Flight.to_json (Server.recorder server)
  | "drain" ->
    drain ();
    "{\"status\":\"draining\"}\n"
  | other ->
    Printf.sprintf
      "{\"error\":\"unknown command %s\",\"commands\":[\"stats\",\"health\",\
       \"metrics\",\"flight\",\"drain\"]}\n"
      (Gg_profile.Trace.json_escape other)
