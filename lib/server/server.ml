open Import

(* The serving loop: accept thread -> bounded queue -> worker domains.
   See server.mli for the architecture; the invariant maintained
   throughout is that no request can kill the process — decode errors,
   compile crashes and deadline misses all become responses, and only
   the operator (signal / stop) ends the loop. *)

type config = {
  socket_path : string;
  workers : int;
  queue_capacity : int;
  read_timeout_s : float;
  retry_after_ms : int;
  logger : Slog.t;
  slow_ms : int;
  flight_capacity : int;
  crash_dump : string option;
}

let default_config ~socket_path =
  {
    socket_path;
    (* at least two workers even on a single-core host: requests block
       on socket reads, deliberate sleeps and deadlines, so a second
       worker overlaps that dead time instead of queueing behind it *)
    workers = max 2 (Parallel.available () - 1);
    queue_capacity = 64;
    read_timeout_s = 10.;
    retry_after_ms = 50;
    logger = Slog.null;
    slow_ms = 0;
    flight_capacity = 64;
    crash_dump = None;
  }

type t = {
  cfg : config;
  tables : Backend.target -> Driver.tables;
  sock : Unix.file_descr;
  queue : (Unix.file_descr * float) Squeue.t;
  shutdown : bool Atomic.t;
  n_served : int Atomic.t;
  recorder : Flight.t;
  mutable pool : Parallel.pool option;
  mutable acceptor : Thread.t option;
  mutable stopped : bool;
}

(* -- the compile barrier -------------------------------------------------- *)

(* Mirrors ggcc's direct compile path exactly (same options record,
   same render calls), so --server output is byte-identical; the error
   strings mirror ggcc's handle_errors formatting for the same reason. *)
let compile_request tables (req : Protocol.request) : Protocol.response =
  try
    if req.Protocol.fail_inject then
      failwith "fail_inject: injected failure inside codegen";
    let prog =
      Trace.phase "frontend" (fun () -> Sema.compile req.Protocol.source)
    in
    match req.Protocol.backend with
    | Protocol.Gg ->
      if req.Protocol.explain then Profile.provenance_enabled := true;
      let options =
        {
          Driver.default_options with
          Driver.idioms = req.Protocol.idioms;
          peephole = req.Protocol.peephole;
          regalloc = req.Protocol.regalloc;
        }
      in
      let out =
        Driver.compile_program ~options ~tables ~jobs:req.Protocol.jobs prog
      in
      Protocol.Asm
        (if req.Protocol.explain then Driver.render_explained tables out
         else out.Driver.assembly)
    | Protocol.Pcc ->
      Protocol.Asm
        (Pcc.compile_program ~peephole:req.Protocol.peephole prog).Pcc.assembly
  with
  | Lexer.Lex_error (line, m) ->
    Protocol.Error (Protocol.Lex, Fmt.str "lexical error, line %d: %s" line m)
  | Parser.Parse_error (line, m) ->
    Protocol.Error (Protocol.Parse, Fmt.str "syntax error, line %d: %s" line m)
  | Sema.Semantic_error m -> Protocol.Error (Protocol.Semantic, m)
  | Matcher.Reject e ->
    Protocol.Error (Protocol.Reject, Fmt.str "%a" Matcher.pp_error e)
  | Stack_overflow -> Protocol.Error (Protocol.Internal, "stack overflow")
  | e -> Protocol.Error (Protocol.Internal, Printexc.to_string e)

(* -- workers -------------------------------------------------------------- *)

let ms_since t0 = (Unix.gettimeofday () -. t0) *. 1e3

let reply fd resp =
  (* the peer may be gone (it timed out client-side, or was rejected
     and closed); a failed reply must not take the worker down *)
  try Framing.write_frame fd (Protocol.encode_response resp)
  with Unix.Unix_error _ | Protocol.Protocol_error _ -> ()

let respond t fd resp =
  (match resp with
  | Protocol.Asm _ -> Metrics.incr "server.responses_ok"
  | Protocol.Error _ -> Metrics.incr "server.responses_error"
  | Protocol.Timeout -> Metrics.incr "server.timeouts_total"
  | Protocol.Retry_after _ -> ());
  Atomic.incr t.n_served;
  reply fd resp

let outcome_name = function
  | Protocol.Asm _ -> "ok"
  | Protocol.Error (k, _) -> Fmt.str "%a" Protocol.pp_error_kind k
  | Protocol.Timeout -> "timeout"
  | Protocol.Retry_after _ -> "retry"

(* every completed request leaves a flight-recorder entry; an Internal
   error means the compile barrier caught a crash, so the ring — now
   holding the crashing request's id as its newest entry — is dumped
   for the post-mortem before the daemon carries on serving *)
let black_box t ~worker ~id ~bytes ~target ~regalloc ~outcome ~queue_wait_us
    ~latency_us =
  Flight.record t.recorder
    {
      Flight.fe_id = id;
      fe_bytes = bytes;
      fe_target = target;
      fe_regalloc = regalloc;
      fe_outcome = outcome;
      fe_queue_wait_us = queue_wait_us;
      fe_latency_us = latency_us;
      fe_worker = worker;
      fe_ts = Unix.gettimeofday ();
    }

let crash_dump t =
  match t.cfg.crash_dump with
  | None -> ()
  | Some path -> (
    try Flight.dump t.recorder path
    with Sys_error _ | Unix.Unix_error _ -> ())

let serve_connection t ~worker fd t_accept =
  let queue_wait_us = int_of_float (ms_since t_accept *. 1e3) in
  if !Metrics.enabled then Metrics.observe Metrics.queue_wait_us queue_wait_us;
  match Framing.read_frame fd with
  | None -> () (* connected and hung up without a request *)
  | exception Protocol.Protocol_error m ->
    respond t fd (Protocol.Error (Protocol.Bad_request, m))
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    respond t fd
      (Protocol.Error (Protocol.Bad_request, "timed out reading the request"))
  | exception Unix.Unix_error _ -> ()
  | Some payload -> (
    Metrics.incr "server.requests_total";
    match Protocol.decode_request payload with
    | exception Protocol.Protocol_error m ->
      Slog.warn t.cfg.logger ~event:"request.bad"
        [ Slog.int "worker" worker; Slog.str "error" m ];
      respond t fd (Protocol.Error (Protocol.Bad_request, m));
      black_box t ~worker ~id:"-" ~bytes:(String.length payload) ~target:"-"
        ~regalloc:"-" ~outcome:"bad_request" ~queue_wait_us
        ~latency_us:(int_of_float (ms_since t_accept *. 1e3))
    | req ->
      let id = req.Protocol.request_id in
      Slog.debug t.cfg.logger ~event:"request.start"
        [
          Slog.str "request_id" id;
          Slog.int "worker" worker;
          Slog.int "bytes" (String.length req.Protocol.source);
          Slog.int "queue_wait_us" queue_wait_us;
        ];
      ( Trace.span ~cat:"server" ~args:[ ("request_id", id) ] "request"
      @@ fun () ->
        if req.Protocol.sleep_ms > 0 then
          Unix.sleepf (float_of_int req.Protocol.sleep_ms /. 1e3);
        let past_deadline () =
          req.Protocol.deadline_ms > 0
          && ms_since t_accept > float_of_int req.Protocol.deadline_ms
        in
        let resp =
          if past_deadline () then Protocol.Timeout
          else
            (* resolving the target's tables may itself hit the disk
               cache; a failure there must answer, not kill the worker *)
            let r =
              match t.tables req.Protocol.target with
              | tables -> compile_request tables req
              | exception e ->
                Protocol.Error (Protocol.Internal, Printexc.to_string e)
            in
            if past_deadline () then Protocol.Timeout else r
        in
        let latency_us = int_of_float (ms_since t_accept *. 1e3) in
        if !Metrics.enabled then
          Metrics.observe Metrics.request_latency_us latency_us;
        respond t fd resp;
        let outcome = outcome_name resp in
        black_box t ~worker ~id ~bytes:(String.length req.Protocol.source)
          ~target:(Backend.target_name req.Protocol.target)
          ~regalloc:
            (match req.Protocol.regalloc with
            | Driver.Stack -> "stack"
            | Driver.Color -> "color")
          ~outcome ~queue_wait_us ~latency_us;
        (match resp with
        | Protocol.Error (Protocol.Internal, _) -> crash_dump t
        | _ -> ());
        let latency_ms = float_of_int latency_us /. 1e3 in
        let fields =
          [
            Slog.str "request_id" id;
            Slog.str "outcome" outcome;
            Slog.int "worker" worker;
            Slog.int "bytes" (String.length req.Protocol.source);
            Slog.int "queue_wait_us" queue_wait_us;
            Slog.int "latency_us" latency_us;
          ]
        in
        if t.cfg.slow_ms > 0 && latency_ms > float_of_int t.cfg.slow_ms then
          Slog.warn t.cfg.logger ~event:"request.slow"
            (fields @ [ Slog.int "slow_ms" t.cfg.slow_ms ])
        else Slog.info t.cfg.logger ~event:"request.done" fields ))

let worker t idx =
  let rec loop () =
    match Squeue.pop t.queue with
    | None -> ()
    | Some (fd, t_accept) ->
      Metrics.incr ~by:(-1) "server.queue_depth";
      (try serve_connection t ~worker:idx fd t_accept
       with e ->
         Slog.warn t.cfg.logger ~event:"worker.error"
           [ Slog.int "worker" idx; Slog.str "error" (Printexc.to_string e) ]);
      (try Unix.close fd with Unix.Unix_error _ -> ());
      loop ()
  in
  loop ()

(* -- accepting ------------------------------------------------------------ *)

let accept_loop t =
  while not (Atomic.get t.shutdown) do
    (* a short select timeout doubles as the shutdown poll: SIGTERM
       lands in the main thread, which only flips the atomic *)
    match Unix.select [ t.sock ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept ~cloexec:true t.sock with
      | exception
          Unix.Unix_error
            ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
        ->
        ()
      | fd, _ ->
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.read_timeout_s
         with Unix.Unix_error _ -> ());
        if Squeue.try_push t.queue (fd, Unix.gettimeofday ()) then
          Metrics.incr "server.queue_depth"
        else begin
          (* backpressure: answer now, from the accept thread, so the
             client learns immediately instead of queueing blind *)
          Metrics.incr "server.rejected_total";
          reply fd (Protocol.Retry_after t.cfg.retry_after_ms);
          (try Unix.close fd with Unix.Unix_error _ -> ())
        end)
  done

(* -- lifecycle ------------------------------------------------------------ *)

let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())

let start ~config:cfg ~tables () =
  Lazy.force ignore_sigpipe;
  if Sys.file_exists cfg.socket_path then begin
    (* stale socket from a dead daemon, or a live one?  probe it *)
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (match Unix.connect probe (Unix.ADDR_UNIX cfg.socket_path) with
    | () ->
      Unix.close probe;
      failwith (Fmt.str "a compile server is already serving %s" cfg.socket_path)
    | exception Unix.Unix_error _ ->
      Unix.close probe;
      (try Sys.remove cfg.socket_path with Sys_error _ -> ()))
  end;
  let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind sock (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen sock 128
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      cfg;
      sock;
      queue = Squeue.create ~capacity:cfg.queue_capacity;
      shutdown = Atomic.make false;
      n_served = Atomic.make 0;
      recorder = Flight.create cfg.flight_capacity;
      pool = None;
      acceptor = None;
      stopped = false;
      tables;
    }
  in
  t.pool <- Some (Parallel.spawn_pool ~domains:cfg.workers (worker t));
  t.acceptor <- Some (Thread.create accept_loop t);
  Slog.info cfg.logger ~event:"serving"
    [
      Slog.str "socket" cfg.socket_path;
      Slog.int "workers" cfg.workers;
      Slog.int "queue_capacity" cfg.queue_capacity;
    ];
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.shutdown true;
    Option.iter Thread.join t.acceptor;
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    (* close after the acceptor is gone: everything already queued is
       still popped and served before the workers see the end *)
    Squeue.close t.queue;
    Option.iter Parallel.join_pool t.pool;
    (try Sys.remove t.cfg.socket_path with Sys_error _ -> ());
    Slog.info t.cfg.logger ~event:"drained"
      [ Slog.int "served" (Atomic.get t.n_served) ]
  end

let served t = Atomic.get t.n_served
let queue_depth t = Squeue.length t.queue
let recorder t = t.recorder
