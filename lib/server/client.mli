(** The [ggcc --server] side of the wire: connect, send one request,
    read one response.

    {!compile} transparently retries {!Protocol.Retry_after} rejections
    with capped exponential backoff (jittered, seeded by the
    server-suggested delay); a caller never receives [Retry_after] —
    exhaustion raises {!Server_error} naming the attempts made and the
    total time backed off.  Transport-level surprises also raise
    {!Server_error} with a one-line message (never a raw [Unix_error]
    backtrace).

    {!ensure} is the spawn-on-demand path: probe the socket, and when
    nothing answers, start [ggccd] detached and wait for it to come up
    — first start pays the table build/cache load, after which every
    [ggcc --server] in the build shares the warm daemon. *)

exception Server_error of string

(** One request/response round trip, with [Retry_after] handled by
    backing off and reconnecting: the [n]-th retry sleeps an equally
    jittered [suggested * 2^n] milliseconds, capped at 2 s.  After
    [retries] retries (default 10) the exhaustion raises
    {!Server_error} — the response returned is never [Retry_after].
    [on_retry] is invoked before each sleep with the attempt number
    (from 1) and the chosen wait, for callers that count or log
    admission-control pushback.  Also raises {!Server_error} if the
    socket is dead or the reply is unreadable. *)
val compile :
  ?retries:int ->
  ?on_retry:(attempt:int -> wait_ms:int -> unit) ->
  socket:string ->
  Protocol.request ->
  Protocol.response

(** [ensure ~socket ~spawn ()] — return once a server answers on
    [socket].  When nothing does: if [spawn] is false raise
    {!Server_error}; otherwise start [ggccd] (the [ggccd] argument,
    else a [ggccd] binary next to the running executable, else [$PATH])
    detached from this process and poll until a daemon accepts or
    [wait_s] (default 60, covering a cold table build) elapses.

    Returns [Some pid] when this call spawned a daemon that is still
    running (callers managing the daemon's lifetime can signal it), and
    [None] when a server was already answering or the spawned child
    has already exited and been reaped.  Two concurrent [~spawn:true]
    callers may both fork a daemon; the loser of the socket race exits,
    and [ensure] treats that exit as success as long as {e a} server is
    answering — reaping the dead child so no zombie is left behind. *)
val ensure :
  ?ggccd:string ->
  ?wait_s:float ->
  socket:string ->
  spawn:bool ->
  unit ->
  int option
