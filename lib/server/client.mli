(** The [ggcc --server] side of the wire: connect, send one request,
    read one response.

    {!compile} transparently retries {!Protocol.Retry_after} rejections
    with the server-suggested backoff; every other response is returned
    to the caller, and transport-level surprises raise {!Server_error}
    with a one-line message (never a raw [Unix_error] backtrace).

    {!ensure} is the spawn-on-demand path: probe the socket, and when
    nothing answers, start [ggccd] detached and wait for it to come up
    — first start pays the table build/cache load, after which every
    [ggcc --server] in the build shares the warm daemon. *)

exception Server_error of string

(** One request/response round trip, with [Retry_after] handled by
    sleeping and reconnecting (at most [retries] times, default 10,
    before surfacing the rejection).  Raises {!Server_error} if the
    socket is dead or the reply is unreadable. *)
val compile : ?retries:int -> socket:string -> Protocol.request -> Protocol.response

(** [ensure ~socket ~spawn ()] — return once a server answers on
    [socket].  When nothing does: if [spawn] is false raise
    {!Server_error}; otherwise start [ggccd] (the [ggccd] argument,
    else a [ggccd] binary next to the running executable, else [$PATH])
    detached from this process and poll until the daemon accepts or
    [wait_s] (default 60, covering a cold table build) elapses. *)
val ensure :
  ?ggccd:string -> ?wait_s:float -> socket:string -> spawn:bool -> unit -> unit
