(** Length-prefixed frames over a file descriptor.

    Every protocol message travels as a 4-byte big-endian payload
    length followed by the payload.  Reads and writes loop over partial
    transfers and retry [EINTR]; a frame longer than
    {!Protocol.max_frame} or an EOF in the middle of a frame raises
    {!Protocol.Protocol_error}.  A clean EOF at a frame boundary is not
    an error — {!read_frame} returns [None] (the peer hung up). *)

val write_frame : Unix.file_descr -> string -> unit

(** [read_frame fd] — the next payload, or [None] on clean EOF.
    Honours the descriptor's receive timeout ([SO_RCVTIMEO]): a timed
    out read surfaces as the usual [Unix.Unix_error (EAGAIN, _, _)]. *)
val read_frame : Unix.file_descr -> string option
