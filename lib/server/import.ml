(* Short aliases for modules used throughout this library. *)
module Tree = Gg_ir.Tree
module Grammar = Gg_grammar.Grammar
module Driver = Gg_codegen.Driver
module Backend = Gg_codegen.Backend
module Parallel = Gg_codegen.Parallel
module Sema = Gg_frontc.Sema
module Lexer = Gg_frontc.Lexer
module Parser = Gg_frontc.Parser
module Pcc = Gg_pcc.Pcc
module Matcher = Gg_matcher.Matcher
module Profile = Gg_profile.Profile
module Trace = Gg_profile.Trace
module Metrics = Gg_profile.Metrics
