(** The [ggccd] wire protocol: compile requests and responses.

    A conversation is one request frame followed by one response frame
    over a Unix-domain stream socket (frames are length-prefixed, see
    {!Framing}).  The payload encoding is an explicit big-endian binary
    format — not [Marshal] — so a malformed or hostile peer can never
    crash the daemon: every decoder is bounds-checked and raises
    {!Protocol_error}, which the server answers with a {!Bad_request}
    response.

    The request carries everything [ggcc] would have decided locally
    (backend, idiom/peephole switches, [-j], [--explain]) plus a
    deadline, so [ggcc --server] output is byte-identical to a direct
    compile.  [fail_inject]/[sleep_ms] are test hooks: they let the
    test suite and CI exercise the daemon's exception barrier and
    deadline handling deterministically. *)

val version : int

(** Hard upper bound on any frame payload this protocol will produce or
    accept (sources and assembly are far smaller in practice). *)
val max_frame : int

(** Longest request id the wire format carries; the {!request}
    constructor truncates, the decoder rejects. *)
val max_request_id : int

type backend = Gg | Pcc

type request = {
  request_id : string;
      (** client-generated correlation id (v4), threaded through the
          daemon's logs, trace spans and flight recorder so one request
          can be followed across both processes *)
  backend : backend;
  target : Gg_codegen.Backend.target;
      (** machine description to compile for (gg backend; the pcc
          baseline emits VAX assembly only, and a [Pcc]/[Risc] frame
          fails decode) *)
  regalloc : Gg_codegen.Driver.regalloc;
      (** register allocator (gg backend; a [Pcc]/[Color] frame fails
          decode) *)
  idioms : bool;  (** run the idiom recogniser (gg backend) *)
  peephole : bool;
  explain : bool;  (** provenance-annotated listing *)
  jobs : int;  (** domains for this one compile, as [ggcc -j] *)
  deadline_ms : int;
      (** give up and answer {!Timeout} once this many milliseconds
          have passed since the server accepted the connection;
          [0] means no deadline *)
  fail_inject : bool;
      (** test hook: raise inside the worker's compile barrier *)
  sleep_ms : int;  (** test hook: stall the worker before compiling *)
  source : string;  (** mini-C source text *)
}

(** A fresh process-unique request id ([r<pid>-<us>-<seq>]), what the
    {!request} constructor defaults to. *)
val fresh_request_id : unit -> string

(** Request with [ggcc]'s defaults: a fresh request id, gg backend, VAX
    target, stack allocator, idioms on, peephole and explain off, one
    job, no deadline, no test hooks.  An explicit [request_id] longer
    than {!max_request_id} is truncated. *)
val request :
  ?request_id:string ->
  ?backend:backend ->
  ?target:Gg_codegen.Backend.target ->
  ?regalloc:Gg_codegen.Driver.regalloc ->
  ?idioms:bool ->
  ?peephole:bool ->
  ?explain:bool ->
  ?jobs:int ->
  ?deadline_ms:int ->
  ?fail_inject:bool ->
  ?sleep_ms:int ->
  string ->
  request

type error_kind =
  | Lex
  | Parse
  | Semantic
  | Reject  (** the matcher raised a syntactic block *)
  | Internal  (** anything else the exception barrier caught *)
  | Bad_request  (** undecodable or oversized request frame *)

type response =
  | Asm of string  (** the complete assembler file *)
  | Error of error_kind * string
  | Retry_after of int  (** queue full; retry after this many ms *)
  | Timeout  (** the request's deadline passed *)

(** Raised by the decoders on any malformed payload. *)
exception Protocol_error of string

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response

(** [$GGCG_SOCKET], else [<tmpdir>/ggccd-<uid>.sock]. *)
val default_socket : unit -> string

val pp_error_kind : error_kind Fmt.t
