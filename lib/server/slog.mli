(** Structured JSON-line logging for the daemon.

    Every record is one JSON object on one line — [ts] (ISO 8601 UTC),
    [level], [event], plus the fields the call site attaches (request
    id, worker index, latency).  Rendering happens outside the lock;
    the sink is invoked under a mutex with the complete line, so
    records from concurrent workers never interleave, and the channel
    sink flushes per line so a crash or [tail -f] never misses the
    record that explains what the daemon was doing. *)

type level = Debug | Info | Warn

val level_name : level -> string

(** [None] on anything but ["debug" | "info" | "warn"]
    ([ggccd --log-level] validation). *)
val level_of_string : string -> level option

type t

(** Drops everything; the default for embedded servers (tests, bench). *)
val null : t

(** [create ?level emit] builds a logger that passes each rendered line
    (no trailing newline) to [emit] under the logger's lock.  Records
    below [level] (default [Info]) are skipped before rendering. *)
val create : ?level:level -> (string -> unit) -> t

(** Line-buffered channel sink: writes the line, a newline, and flushes. *)
val to_channel : ?level:level -> out_channel -> t

(** {1 Fields} *)

type field

val str : string -> string -> field
val int : string -> int -> field

(** {1 Emission} *)

val log : t -> level -> event:string -> field list -> unit
val debug : t -> event:string -> field list -> unit
val info : t -> event:string -> field list -> unit
val warn : t -> event:string -> field list -> unit
