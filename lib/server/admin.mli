(** The daemon's ops plane: a second Unix-domain socket answering
    line-oriented admin commands.

    One connection is one command line and one reply, then the server
    closes — drivable from a shell with a socket tool, no client
    library needed.  The endpoint runs on its own thread and shares
    nothing with the compile plane but the (lock-free) metrics shards
    and the flight recorder, so a health probe answers even when every
    worker is busy.

    The {!default_handler} commands:
    - [stats] — the live {!Gg_profile.Metrics.to_json} document, the
      same bytes the shutdown sidecar writes;
    - [health] — [{"status":"ok","served":N,"queue_depth":N}];
    - [metrics] — Prometheus text exposition;
    - [flight] — the {!Flight} ring as JSON;
    - [drain] — asks the daemon to shut down gracefully, answers
      [{"status":"draining"}]. *)

type t

(** Binds [socket_path] and serves [handle] on a dedicated thread.
    [handle] maps a trimmed command line to the complete reply bytes.
    A live endpoint already owning the socket is a [Failure]; a stale
    socket file is replaced. *)
val start : socket_path:string -> handle:(string -> string) -> t

(** Stop the thread, close and remove the socket.  Idempotent. *)
val stop : t -> unit

(** The standard command set over a running {!Server.t}; [drain] is
    invoked (from the admin thread) when the [drain] command arrives
    and should trigger the daemon's graceful shutdown. *)
val default_handler : server:Server.t -> drain:(unit -> unit) -> string -> string
