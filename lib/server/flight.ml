(* A crash-surviving flight recorder: the last N request summaries in a
   fixed-size ring.

   Recording is lock-free — one Atomic.fetch_and_add to claim a slot,
   one pointer store to fill it.  OCaml pointer stores are atomic, so a
   racing reader sees either the old entry or the new one, never a torn
   record; that is exactly the guarantee a SIGQUIT dump or the crash
   barrier needs while the worker domains keep flying. *)

module Trace = Gg_profile.Trace

type entry = {
  fe_id : string;  (* request id *)
  fe_bytes : int;  (* request source bytes *)
  fe_target : string;
  fe_regalloc : string;
  fe_outcome : string;  (* ok | error | bad_request | crash | timeout | ... *)
  fe_queue_wait_us : int;
  fe_latency_us : int;
  fe_worker : int;
  fe_ts : float;  (* absolute unix seconds at completion *)
}

type t = { slots : entry option array; seq : int Atomic.t }

let create capacity =
  let capacity = max 1 capacity in
  { slots = Array.make capacity None; seq = Atomic.make 0 }

let capacity t = Array.length t.slots

let record t e =
  let i = Atomic.fetch_and_add t.seq 1 in
  t.slots.(i mod Array.length t.slots) <- Some e

let recorded t = Atomic.get t.seq

(* oldest-first; reads race benignly with writers — each slot read is
   one atomic pointer load, so every returned entry is internally
   consistent even if the set is momentarily mixed-generation *)
let entries t =
  let n = Array.length t.slots in
  let seq = Atomic.get t.seq in
  let first = if seq <= n then 0 else seq - n in
  let out = ref [] in
  for i = seq - 1 downto first do
    match t.slots.(i mod n) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

let entry_json e =
  Printf.sprintf
    "{\"id\":\"%s\",\"bytes\":%d,\"target\":\"%s\",\"regalloc\":\"%s\",\
     \"outcome\":\"%s\",\"queue_wait_us\":%d,\"latency_us\":%d,\
     \"worker\":%d,\"ts\":%.6f}"
    (Trace.json_escape e.fe_id) e.fe_bytes
    (Trace.json_escape e.fe_target)
    (Trace.json_escape e.fe_regalloc)
    (Trace.json_escape e.fe_outcome)
    e.fe_queue_wait_us e.fe_latency_us e.fe_worker e.fe_ts

let to_json t =
  let es = entries t in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"capacity\":%d,\"recorded\":%d,\"entries\":["
       (capacity t) (recorded t));
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (entry_json e))
    es;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* tmp + rename, like Metrics.write_json_atomic: the dump path is read
   by operators after a crash, so it must never hold a torn document *)
let dump t path =
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let oc = open_out tmp in
  (try output_string oc (to_json t)
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path
