(** A crash-surviving flight recorder: the last N request summaries in
    a fixed-size ring.

    Recording is lock-free (one [Atomic.fetch_and_add] to claim a slot,
    one store to fill it), so workers pay nanoseconds per request and
    the ring can be dumped at any moment — on SIGQUIT, from the crash
    barrier — while other domains keep recording.  Reads race benignly:
    every entry returned is internally consistent, the set may span a
    generation boundary. *)

type entry = {
  fe_id : string;  (** request id *)
  fe_bytes : int;  (** request source bytes *)
  fe_target : string;
  fe_regalloc : string;
  fe_outcome : string;
      (** [ok], [error], [bad_request], [crash], [timeout], ... *)
  fe_queue_wait_us : int;
  fe_latency_us : int;
  fe_worker : int;
  fe_ts : float;  (** absolute unix seconds at completion *)
}

type t

(** [create n] makes a ring holding the last [n] (at least 1) entries. *)
val create : int -> t

val capacity : t -> int

(** Total entries ever recorded (≥ the number retained). *)
val recorded : t -> int

val record : t -> entry -> unit

(** Retained entries, oldest first. *)
val entries : t -> entry list

(** [{"capacity":_,"recorded":_,"entries":[...]}] — one object per
    entry, keys matching the {!entry} fields. *)
val to_json : t -> string

(** Atomic (tmp + rename) JSON dump; the post-mortem artefact must
    never be torn. *)
val dump : t -> string -> unit
