(* u32-BE length prefix + payload over a stream socket.  The loops
   below are the only place the server touches raw descriptors, so the
   partial-transfer and EINTR handling lives here once. *)

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (pos + n) (len - n)
  end

(* [read_all] returns how many bytes it could read before EOF *)
let rec read_all fd buf pos len =
  if len = 0 then pos
  else
    match Unix.read fd buf pos len with
    | 0 -> pos
    | n -> read_all fd buf (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all fd buf pos len

let write_frame fd payload =
  let n = String.length payload in
  if n > Protocol.max_frame then
    raise (Protocol.Protocol_error (Fmt.str "frame too large (%d bytes)" n));
  let buf = Bytes.create (4 + n) in
  Bytes.set_int32_be buf 0 (Int32.of_int n);
  Bytes.blit_string payload 0 buf 4 n;
  write_all fd buf 0 (4 + n)

let read_frame fd =
  let hdr = Bytes.create 4 in
  match read_all fd hdr 0 4 with
  | 0 -> None (* clean EOF: no frame started *)
  | 4 ->
    let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if n < 0 || n > Protocol.max_frame then
      raise (Protocol.Protocol_error (Fmt.str "bad frame length %d" n));
    let buf = Bytes.create n in
    let got = read_all fd buf 0 n in
    if got < n then
      raise
        (Protocol.Protocol_error
           (Fmt.str "EOF inside a frame (%d of %d bytes)" got n));
    Some (Bytes.unsafe_to_string buf)
  | got ->
    raise
      (Protocol.Protocol_error
         (Fmt.str "EOF inside a frame header (%d of 4 bytes)" got))
