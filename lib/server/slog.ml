(* Structured JSON-line logging for the daemon.

   One log record is one JSON object on one line — ts, level, event,
   then whatever fields the call site attaches (request_id, worker,
   latency_us, ...).  The sink is called under a mutex with the whole
   rendered line at once, so concurrent workers never interleave
   fragments and a tail -f reader always sees complete records. *)

module Trace = Gg_profile.Trace

type level = Debug | Info | Warn

let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | _ -> None

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2

type t = { min_level : level; emit : string -> unit; lock : Mutex.t }

let null = { min_level = Warn; emit = (fun _ -> ()); lock = Mutex.create () }

let create ?(level = Info) emit = { min_level = level; emit; lock = Mutex.create () }

let to_channel ?level oc =
  (* flush per line: an operator tailing the log (or a crash) must not
     lose the record that explains what the daemon was doing *)
  create ?level (fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc)

(* ISO 8601 UTC with milliseconds; sortable and unambiguous *)
let timestamp () =
  let now = Unix.gettimeofday () in
  let tm = Unix.gmtime now in
  let ms = int_of_float ((now -. Float.of_int (int_of_float now)) *. 1000.) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec ms

type field = F_str of string * string | F_int of string * int

let str k v = F_str (k, v)
let int k v = F_int (k, v)

let render level ~event fields =
  let b = Buffer.create 160 in
  Buffer.add_string b
    (Printf.sprintf "{\"ts\":\"%s\",\"level\":\"%s\",\"event\":\"%s\""
       (timestamp ()) (level_name level)
       (Trace.json_escape event));
  List.iter
    (fun f ->
      match f with
      | F_str (k, v) ->
        Buffer.add_string b
          (Printf.sprintf ",\"%s\":\"%s\"" (Trace.json_escape k)
             (Trace.json_escape v))
      | F_int (k, v) ->
        Buffer.add_string b
          (Printf.sprintf ",\"%s\":%d" (Trace.json_escape k) v))
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

let log t level ~event fields =
  if rank level >= rank t.min_level then begin
    let line = render level ~event fields in
    Mutex.protect t.lock (fun () -> t.emit line)
  end

let debug t ~event fields = log t Debug ~event fields
let info t ~event fields = log t Info ~event fields
let warn t ~event fields = log t Warn ~event fields
