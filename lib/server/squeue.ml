(* Mutex + condition bounded queue.  Mutex/Condition synchronise across
   domains in OCaml 5, so the accept thread (a systhread) and the
   worker domains share this safely. *)

type 'a t = {
  q : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
  m : Mutex.t;
  nonempty : Condition.t;
}

let create ~capacity =
  {
    q = Queue.create ();
    capacity = max 1 capacity;
    closed = false;
    m = Mutex.create ();
    nonempty = Condition.create ();
  }

let try_push t x =
  Mutex.protect t.m (fun () ->
      if t.closed || Queue.length t.q >= t.capacity then false
      else begin
        Queue.push x t.q;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  Mutex.protect t.m (fun () ->
      while Queue.is_empty t.q && not t.closed do
        Condition.wait t.nonempty t.m
      done;
      Queue.take_opt t.q)

let close t =
  Mutex.protect t.m (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = Mutex.protect t.m (fun () -> Queue.length t.q)
