module Trace = Gg_profile.Trace

exception Server_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Server_error s)) fmt

let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ())

let connect ~socket =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

(* Each leg of the conversation is its own client-side span, tagged
   with the request id the server tags its span with — so trace-merge
   lines both processes up on one timeline and the gap between
   client.write and the server's request span reads as queue wait. *)
let roundtrip ~socket req =
  Lazy.force ignore_sigpipe;
  let args = [ ("request_id", req.Protocol.request_id) ] in
  let fd =
    Trace.span ~cat:"client" ~args "client.connect" @@ fun () ->
    try connect ~socket
    with Unix.Unix_error (e, _, _) ->
      fail "cannot connect to compile server %s: %s" socket
        (Unix.error_message e)
  in
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* a rejected connection may already hold the Retry_after response
     with the write side closed — EPIPE here is fine, the answer is
     still readable *)
  (Trace.span ~cat:"client" ~args "client.write" @@ fun () ->
   try Framing.write_frame fd (Protocol.encode_request req)
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
  (* the await span covers the server's queue wait plus its compile;
     merged traces show the split against the server's request span *)
  Trace.span ~cat:"client" ~args "client.await" @@ fun () ->
  match Framing.read_frame fd with
  | Some payload -> (
    try Protocol.decode_response payload
    with Protocol.Protocol_error m -> fail "unreadable server response: %s" m)
  | None -> fail "server closed the connection without a response"
  | exception Unix.Unix_error (e, _, _) ->
    fail "reading server response: %s" (Unix.error_message e)
  | exception Protocol.Protocol_error m ->
    fail "unreadable server response: %s" m

(* Backoff for a full server queue: exponential with equal jitter,
   capped.  The server's suggested delay seeds the schedule; the
   doubling spreads a thundering herd of rejected clients, the jitter
   keeps them from re-synchronising, and the cap bounds the wait once
   the queue is persistently full. *)
let backoff_cap_ms = 2000

let jitter_rng = lazy (Random.State.make_self_init ())

let backoff_ms ~suggested_ms attempt =
  let base = max 1 suggested_ms in
  let d = min backoff_cap_ms (base * (1 lsl min attempt 10)) in
  (d / 2) + Random.State.int (Lazy.force jitter_rng) (max 1 ((d + 1) / 2))

let compile ?(retries = 10) ?on_retry ~socket req =
  let rec go n waited_ms =
    match roundtrip ~socket req with
    | Protocol.Retry_after ms when n < retries ->
      let wait = backoff_ms ~suggested_ms:ms n in
      Option.iter (fun f -> f ~attempt:(n + 1) ~wait_ms:wait) on_retry;
      Unix.sleepf (float_of_int wait /. 1e3);
      go (n + 1) (waited_ms + wait)
    | Protocol.Retry_after _ ->
      (* exhaustion is an error, never a terminal answer: the caller
         asked for assembly, not for a rejection to interpret *)
      fail
        "compile server %s: queue full; gave up after %d attempt%s and %d ms \
         of backoff"
        socket (n + 1)
        (if n = 0 then "" else "s")
        waited_ms
    | resp -> resp
  in
  go 0 0

(* -- spawn on demand ------------------------------------------------------ *)

let alive ~socket =
  match connect ~socket with
  | fd ->
    Unix.close fd;
    true
  | exception Unix.Unix_error _ -> false

let find_ggccd () =
  let dir = Filename.dirname Sys.executable_name in
  let candidates =
    [ Filename.concat dir "ggccd.exe"; Filename.concat dir "ggccd" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "ggccd" (* execvp searches $PATH *)

let spawn_daemon ~ggccd ~socket =
  let prog = match ggccd with Some p -> p | None -> find_ggccd () in
  let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let null_out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    try
      Unix.create_process prog
        [| prog; "--socket"; socket |]
        null_in null_out null_out
    with Unix.Unix_error (e, _, _) ->
      Unix.close null_in;
      Unix.close null_out;
      fail "cannot spawn %s: %s" prog (Unix.error_message e)
  in
  Unix.close null_in;
  Unix.close null_out;
  (prog, pid)

let ensure ?ggccd ?(wait_s = 60.) ~socket ~spawn () =
  if alive ~socket then None
  else begin
    if not spawn then
      fail "no compile server on %s (use --spawn to start one)" socket;
    let prog, pid = spawn_daemon ~ggccd ~socket in
    let deadline = Unix.gettimeofday () +. wait_s in
    (* true iff our child is done and reaped (no zombie left behind) *)
    let reaped () =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> false
      | _, _ -> true
      | exception Unix.Unix_error _ -> true
    in
    let rec wait () =
      if alive ~socket then
        (* a server answers; our child is either that server or a
           spawn-race loser — reap it now if it already exited, so no
           zombie outlives this call *)
        if reaped () then None else Some pid
      else if reaped () then begin
        (* Our child exited without serving.  That is fatal only when
           no server exists: two --spawn clients can race, and the
           loser of the stale-socket fight exits while (or just
           before) the winner starts accepting — so give the winner a
           moment and re-check the socket before failing. *)
        let grace = Float.min (deadline -. Unix.gettimeofday ()) 2. in
        let grace_deadline = Unix.gettimeofday () +. grace in
        let rec recheck () =
          if alive ~socket then None
          else if Unix.gettimeofday () > grace_deadline then
            fail "%s exited before serving %s" prog socket
          else begin
            Unix.sleepf 0.05;
            recheck ()
          end
        in
        recheck ()
      end
      else if Unix.gettimeofday () > deadline then
        fail "%s did not start serving %s within %.0f s" prog socket wait_s
      else begin
        Unix.sleepf 0.1;
        wait ()
      end
    in
    wait ()
  end
