exception Server_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Server_error s)) fmt

let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ())

let connect ~socket =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let roundtrip ~socket req =
  Lazy.force ignore_sigpipe;
  let fd =
    try connect ~socket
    with Unix.Unix_error (e, _, _) ->
      fail "cannot connect to compile server %s: %s" socket
        (Unix.error_message e)
  in
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* a rejected connection may already hold the Retry_after response
     with the write side closed — EPIPE here is fine, the answer is
     still readable *)
  (try Framing.write_frame fd (Protocol.encode_request req)
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
  match Framing.read_frame fd with
  | Some payload -> (
    try Protocol.decode_response payload
    with Protocol.Protocol_error m -> fail "unreadable server response: %s" m)
  | None -> fail "server closed the connection without a response"
  | exception Unix.Unix_error (e, _, _) ->
    fail "reading server response: %s" (Unix.error_message e)
  | exception Protocol.Protocol_error m ->
    fail "unreadable server response: %s" m

let compile ?(retries = 10) ~socket req =
  let rec go n =
    match roundtrip ~socket req with
    | Protocol.Retry_after ms when n < retries ->
      Unix.sleepf (float_of_int (max 1 ms) /. 1e3);
      go (n + 1)
    | resp -> resp
  in
  go 0

(* -- spawn on demand ------------------------------------------------------ *)

let alive ~socket =
  match connect ~socket with
  | fd ->
    Unix.close fd;
    true
  | exception Unix.Unix_error _ -> false

let find_ggccd () =
  let dir = Filename.dirname Sys.executable_name in
  let candidates =
    [ Filename.concat dir "ggccd.exe"; Filename.concat dir "ggccd" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "ggccd" (* execvp searches $PATH *)

let spawn_daemon ~ggccd ~socket =
  let prog = match ggccd with Some p -> p | None -> find_ggccd () in
  let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let null_out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    try
      Unix.create_process prog
        [| prog; "--socket"; socket |]
        null_in null_out null_out
    with Unix.Unix_error (e, _, _) ->
      Unix.close null_in;
      Unix.close null_out;
      fail "cannot spawn %s: %s" prog (Unix.error_message e)
  in
  Unix.close null_in;
  Unix.close null_out;
  (prog, pid)

let ensure ?ggccd ?(wait_s = 60.) ~socket ~spawn () =
  if not (alive ~socket) then begin
    if not spawn then
      fail "no compile server on %s (use --spawn to start one)" socket;
    let prog, pid = spawn_daemon ~ggccd ~socket in
    let deadline = Unix.gettimeofday () +. wait_s in
    let rec wait () =
      if alive ~socket then ()
      else begin
        (* fail fast if the daemon died (bad flags, unwritable socket) *)
        (match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> ()
        | _, Unix.WEXITED 0 -> ()
        | _, (Unix.WEXITED _ | Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
          fail "%s exited before serving %s" prog socket
        | exception Unix.Unix_error _ -> ());
        if Unix.gettimeofday () > deadline then
          fail "%s did not start serving %s within %.0f s" prog socket wait_s;
        Unix.sleepf 0.1;
        wait ()
      end
    in
    wait ()
  end
