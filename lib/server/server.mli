open Import

(** The [ggccd] serving loop.

    One long-lived process loads the packed tables once (through the
    {!Gg_tablegen.Cache}) and amortises that fixed cost over every
    subsequent compile — the serving analogue of the paper's table-reuse
    argument.  Architecture:

    - an accept thread owns the Unix-domain listening socket and pushes
      each accepted connection (stamped with its accept time) onto a
      bounded {!Squeue}; a full queue is answered immediately with
      {!Protocol.Retry_after} — backpressure instead of unbounded
      buffering;
    - a {!Parallel.spawn_pool} of worker domains drains the queue; each
      worker reads the request frame, compiles behind an exception
      barrier (a crashing compile becomes an [Error] response, the
      daemon keeps serving), honours the request's deadline with a
      [Timeout] response, writes the reply and closes the connection;
    - {!stop} drains gracefully: accepting stops, everything already
      queued is still served, the workers are joined, the socket file
      removed.

    Telemetry rides the existing instruments: [server.requests_total],
    [server.responses_*], [server.queue_depth] and friends in
    {!Metrics} named counters, the {!Metrics.queue_wait_us} /
    {!Metrics.request_latency_us} histograms, and one {!Trace} span per
    request on the recording worker's own track.  The v4 request id is
    threaded through everything a request touches — the span's [args],
    every {!Slog} record, the {!Flight} recorder entry — so one id
    greps across logs, traces and post-mortem dumps. *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains draining the queue *)
  queue_capacity : int;  (** accepted-but-unserved connections *)
  read_timeout_s : float;
      (** [SO_RCVTIMEO] on accepted connections, so a client that
          connects and never sends cannot hold a worker forever *)
  retry_after_ms : int;  (** suggested backoff in rejections *)
  logger : Slog.t;  (** structured log sink; {!Slog.null} by default *)
  slow_ms : int;
      (** requests slower than this log [request.slow] at [warn]
          instead of [request.done] at [info]; [0] disables *)
  flight_capacity : int;  (** flight-recorder ring size *)
  crash_dump : string option;
      (** where the flight ring is dumped when the compile barrier
          catches a crash ([Internal] response); [None] disables *)
}

val default_config : socket_path:string -> config

type t

(** Binds the socket, spawns the accept thread and worker pool, and
    returns immediately.  A live daemon already owning the socket is a
    [Failure]; a stale socket file is replaced.  [tables] resolves each
    request's target to its parse tables — the caller decides cache vs
    build (and typically backs it with per-target lazies so a target
    is only loaded when first requested); it must be safe to call from
    any worker domain. *)
val start :
  config:config -> tables:(Backend.target -> Driver.tables) -> unit -> t

(** Graceful drain: stop accepting, serve the backlog, join the
    workers, remove the socket file.  Idempotent. *)
val stop : t -> unit

(** Requests answered so far (any response kind). *)
val served : t -> int

(** Connections accepted but not yet picked up by a worker (live admin
    [stats]). *)
val queue_depth : t -> int

(** The daemon's flight recorder: the last [flight_capacity] request
    summaries, dumpable at any moment (SIGQUIT, admin [flight]). *)
val recorder : t -> Flight.t

(** The compile path behind the barrier, exposed for the differential
    tests: exactly what a worker runs for a decoded request, including
    the error mapping — never raises. *)
val compile_request : Driver.tables -> Protocol.request -> Protocol.response
