(* Explicit big-endian binary encoding of compile requests/responses.
   Every decode is bounds-checked: the daemon faces arbitrary bytes from
   any local process, and a bad frame must become a Bad_request
   response, never an exception escaping the worker. *)

(* version 2 added the target byte after the backend byte; version 3
   added the register-allocator byte after the target byte; version 4
   added the client-generated request id (u8 length + bytes) after the
   register-allocator byte *)
let version = 4
let max_frame = 64 * 1024 * 1024
let max_request_id = 64

type backend = Gg | Pcc

type request = {
  request_id : string;
  backend : backend;
  target : Gg_codegen.Backend.target;
  regalloc : Gg_codegen.Driver.regalloc;
  idioms : bool;
  peephole : bool;
  explain : bool;
  jobs : int;
  deadline_ms : int;
  fail_inject : bool;
  sleep_ms : int;
  source : string;
}

(* pid + wall clock + process-local counter: unique across concurrent
   clients on one machine without coordination, and short enough to
   grep a merged log or trace for *)
let id_counter = Atomic.make 0

let fresh_request_id () =
  let us = int_of_float (Unix.gettimeofday () *. 1e6) in
  Printf.sprintf "r%04x-%08x-%04x"
    (Unix.getpid () land 0xffff)
    (us land 0xffffffff)
    (Atomic.fetch_and_add id_counter 1 land 0xffff)

let clip_id id =
  if String.length id <= max_request_id then id
  else String.sub id 0 max_request_id

let request ?request_id ?(backend = Gg) ?(target = Gg_codegen.Backend.Vax)
    ?(regalloc = Gg_codegen.Driver.Stack) ?(idioms = true) ?(peephole = false)
    ?(explain = false) ?(jobs = 1) ?(deadline_ms = 0) ?(fail_inject = false)
    ?(sleep_ms = 0) source =
  let request_id =
    match request_id with Some id -> clip_id id | None -> fresh_request_id ()
  in
  {
    request_id;
    backend;
    target;
    regalloc;
    idioms;
    peephole;
    explain;
    jobs;
    deadline_ms;
    fail_inject;
    sleep_ms;
    source;
  }

type error_kind = Lex | Parse | Semantic | Reject | Internal | Bad_request

type response =
  | Asm of string
  | Error of error_kind * string
  | Retry_after of int
  | Timeout

exception Protocol_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Protocol_error s)) fmt

(* -- readers ------------------------------------------------------------- *)

(* a cursor over the payload string; every primitive checks bounds *)
type cursor = { s : string; mutable pos : int }

let need c n what =
  if c.pos + n > String.length c.s then
    fail "truncated payload: %s at offset %d" what c.pos

let u8 c what =
  need c 1 what;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u16 c what =
  need c 2 what;
  let v = String.get_uint16_be c.s c.pos in
  c.pos <- c.pos + 2;
  v

let i32 c what =
  need c 4 what;
  let v = Int32.to_int (String.get_int32_be c.s c.pos) in
  c.pos <- c.pos + 4;
  v

let str c what =
  let n = i32 c what in
  if n < 0 || n > max_frame then fail "bad %s length %d" what n;
  need c n what;
  let v = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  v

let finish c =
  if c.pos <> String.length c.s then
    fail "%d trailing bytes after payload" (String.length c.s - c.pos)

(* -- requests ------------------------------------------------------------- *)

let flag_idioms = 0x01
let flag_peephole = 0x02
let flag_explain = 0x04
let flag_fail_inject = 0x08

let encode_request r =
  let b = Buffer.create (64 + String.length r.source) in
  Buffer.add_char b 'Q';
  Buffer.add_uint8 b version;
  Buffer.add_uint8 b (match r.backend with Gg -> 0 | Pcc -> 1);
  Buffer.add_uint8 b
    (match r.target with Gg_codegen.Backend.Vax -> 0 | Gg_codegen.Backend.Risc -> 1);
  Buffer.add_uint8 b
    (match r.regalloc with
    | Gg_codegen.Driver.Stack -> 0
    | Gg_codegen.Driver.Color -> 1);
  let id = clip_id r.request_id in
  Buffer.add_uint8 b (String.length id);
  Buffer.add_string b id;
  let flags =
    (if r.idioms then flag_idioms else 0)
    lor (if r.peephole then flag_peephole else 0)
    lor (if r.explain then flag_explain else 0)
    lor if r.fail_inject then flag_fail_inject else 0
  in
  Buffer.add_uint8 b flags;
  Buffer.add_uint16_be b (max 1 (min 0xffff r.jobs));
  Buffer.add_int32_be b (Int32.of_int (max 0 r.deadline_ms));
  Buffer.add_int32_be b (Int32.of_int (max 0 r.sleep_ms));
  Buffer.add_int32_be b (Int32.of_int (String.length r.source));
  Buffer.add_string b r.source;
  Buffer.contents b

let decode_request s =
  let c = { s; pos = 0 } in
  (match u8 c "tag" with
  | 0x51 (* 'Q' *) -> ()
  | t -> fail "not a request frame (tag 0x%02x)" t);
  (match u8 c "version" with
  | v when v = version -> ()
  | v -> fail "protocol version %d, expected %d" v version);
  let backend =
    match u8 c "backend" with
    | 0 -> Gg
    | 1 -> Pcc
    | b -> fail "unknown backend %d" b
  in
  let target =
    match u8 c "target" with
    | 0 -> Gg_codegen.Backend.Vax
    | 1 -> Gg_codegen.Backend.Risc
    | t -> fail "unknown target %d" t
  in
  (* the baseline emits VAX assembly; a cross pairing is a frame the
     client should never have produced, so it fails decode and the
     server answers Bad_request *)
  if backend = Pcc && target <> Gg_codegen.Backend.Vax then
    fail "the pcc backend targets the VAX only";
  let regalloc =
    match u8 c "regalloc" with
    | 0 -> Gg_codegen.Driver.Stack
    | 1 -> Gg_codegen.Driver.Color
    | r -> fail "unknown register allocator %d" r
  in
  if backend = Pcc && regalloc <> Gg_codegen.Driver.Stack then
    fail "the pcc backend has no graph-coloring allocator";
  let request_id =
    let n = u8 c "request id length" in
    if n > max_request_id then fail "request id length %d exceeds %d" n max_request_id;
    need c n "request id";
    let v = String.sub c.s c.pos n in
    c.pos <- c.pos + n;
    v
  in
  let flags = u8 c "flags" in
  let jobs = u16 c "jobs" in
  let deadline_ms = i32 c "deadline" in
  let sleep_ms = i32 c "sleep" in
  if deadline_ms < 0 then fail "negative deadline";
  if sleep_ms < 0 then fail "negative sleep";
  let source = str c "source" in
  finish c;
  {
    request_id;
    backend;
    target;
    regalloc;
    idioms = flags land flag_idioms <> 0;
    peephole = flags land flag_peephole <> 0;
    explain = flags land flag_explain <> 0;
    fail_inject = flags land flag_fail_inject <> 0;
    jobs = max 1 jobs;
    deadline_ms;
    sleep_ms;
    source;
  }

(* -- responses ------------------------------------------------------------ *)

let kind_code = function
  | Lex -> 0
  | Parse -> 1
  | Semantic -> 2
  | Reject -> 3
  | Internal -> 4
  | Bad_request -> 5

let kind_of_code = function
  | 0 -> Lex
  | 1 -> Parse
  | 2 -> Semantic
  | 3 -> Reject
  | 4 -> Internal
  | 5 -> Bad_request
  | k -> fail "unknown error kind %d" k

let pp_error_kind ppf k =
  Fmt.string ppf
    (match k with
    | Lex -> "lex"
    | Parse -> "parse"
    | Semantic -> "semantic"
    | Reject -> "reject"
    | Internal -> "internal"
    | Bad_request -> "bad-request")

let encode_response r =
  let b = Buffer.create 64 in
  Buffer.add_char b 'R';
  Buffer.add_uint8 b version;
  (match r with
  | Asm asm ->
    Buffer.add_uint8 b 0;
    Buffer.add_int32_be b (Int32.of_int (String.length asm));
    Buffer.add_string b asm
  | Error (kind, msg) ->
    Buffer.add_uint8 b 1;
    Buffer.add_uint8 b (kind_code kind);
    Buffer.add_int32_be b (Int32.of_int (String.length msg));
    Buffer.add_string b msg
  | Retry_after ms ->
    Buffer.add_uint8 b 2;
    Buffer.add_int32_be b (Int32.of_int (max 0 ms))
  | Timeout -> Buffer.add_uint8 b 3);
  Buffer.contents b

let decode_response s =
  let c = { s; pos = 0 } in
  (match u8 c "tag" with
  | 0x52 (* 'R' *) -> ()
  | t -> fail "not a response frame (tag 0x%02x)" t);
  (match u8 c "version" with
  | v when v = version -> ()
  | v -> fail "protocol version %d, expected %d" v version);
  let r =
    match u8 c "status" with
    | 0 -> Asm (str c "assembly")
    | 1 ->
      let kind = kind_of_code (u8 c "error kind") in
      Error (kind, str c "message")
    | 2 -> Retry_after (i32 c "retry delay")
    | 3 -> Timeout
    | st -> fail "unknown status %d" st
  in
  finish c;
  r

let default_socket () =
  match Sys.getenv_opt "GGCG_SOCKET" with
  | Some s when s <> "" -> s
  | _ ->
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "ggccd-%d.sock" (Unix.getuid ()))
