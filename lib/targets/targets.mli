(** The target registry: one place that knows every backend and its
    simulator.

    The compiler proper ({!Gg_codegen.Driver}) is target-independent
    and works off a {!Gg_codegen.Backend.t} record; this module maps
    target names to those records, owns the per-target default tables,
    enumerates the cache entries a grammar keeps live, and dispatches
    assembly to the matching simulator.  Everything above the driver —
    [ggcc], [ggccd], [ggfuzz], [mdgtool], the benchmarks — selects a
    target through here. *)

module Backend = Gg_codegen.Backend

val backend_of : Backend.target -> Backend.t
val of_string : string -> Backend.target option
val name : Backend.target -> string
val all : Backend.target list

(** The default tables for a target, built once on first use and
    shared. *)
val default_tables : Backend.target -> Gg_codegen.Driver.tables

val build_tables :
  Backend.target -> Gg_vax.Grammar_def.options -> Gg_codegen.Driver.tables

(** Through the on-disk cache ({!Gg_tablegen.Cache}). *)
val cached_tables :
  ?dir:string ->
  Backend.target ->
  Gg_vax.Grammar_def.options ->
  Gg_codegen.Driver.tables

(** The auto heat profile for a target: production firing counts from
    compiling the fixed mini-C corpus with the target's own tables.
    Production ids are grammar-specific, so a profile collected for one
    target does not transfer to another. *)
val heat_profile : Backend.target -> Gg_specialize.Heat.t

(** Tables whose packed layout is specialized around [profile]
    ({!Gg_specialize.Specialize}): cache-first through the
    (target, grammar digest, profile digest) entry unless [use_cache]
    is false, else built from scratch, {e verified cell-for-cell
    against the dense tables}, and stored.  Raises [Failure] if
    verification fails — a specializer bug can never select wrong
    instructions. *)
val specialized_tables :
  ?dir:string ->
  ?use_cache:bool ->
  profile:Gg_specialize.Heat.t ->
  Backend.target ->
  Gg_codegen.Driver.tables

(** The (target name, grammar) pairs that are live for the given
    grammar options — the keep-list for {!Gg_tablegen.Cache.clear_stale}
    so evicting one target's stale entries never drops the other's. *)
val live_cache_entries :
  Gg_vax.Grammar_def.options -> (string * Gg_grammar.Grammar.t) list

(** Target-specific simulator exceptions, normalised so callers need
    not know which simulator ran. *)
exception Sim_error of string

exception Parse_error of int * string

(** Run assembly text under the target's simulator.  Raises
    {!Sim_error} / {!Parse_error} (the per-simulator exceptions are
    re-raised as these). *)
val run_text :
  target:Backend.target ->
  ?max_steps:int ->
  ?global_types:(string * Gg_ir.Dtype.t * int) list ->
  ?ret_type:Gg_ir.Dtype.t ->
  string ->
  entry:string ->
  Gg_ir.Interp.value list ->
  Gg_ir.Simout.t
