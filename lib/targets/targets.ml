module Backend = Gg_codegen.Backend
module Driver = Gg_codegen.Driver
module Interp = Gg_ir.Interp
module Dtype = Gg_ir.Dtype
module Simout = Gg_ir.Simout

let backend_of = function
  | Backend.Vax -> Backend.vax
  | Backend.Risc -> Gg_risc.Target.backend

let of_string s = Backend.target_of_string s
let name = Backend.target_name
let all = Backend.all_targets

(* one set of default tables per target, built on first use *)
let default_vax_tables = Driver.default_tables

let default_risc_tables =
  lazy
    (Driver.build_tables ~backend:Gg_risc.Target.backend
       Gg_risc.Grammar_def.default)

let default_tables = function
  | Backend.Vax -> Lazy.force default_vax_tables
  | Backend.Risc -> Lazy.force default_risc_tables

let build_tables target gopts =
  Driver.build_tables ~backend:(backend_of target) gopts

let cached_tables ?dir target gopts =
  Driver.cached_tables ?dir ~backend:(backend_of target) gopts

(* Profile-guided specialization (Gg_specialize): the auto profile is
   the firing heat of the fixed mini-C corpus compiled with this
   target's own tables — each grammar numbers its productions
   differently, so a profile is grammar-specific and must be collected
   per target. *)
let heat_profile target =
  let saved = !Gg_profile.Profile.coverage_enabled in
  Gg_profile.Profile.coverage_enabled := true;
  Gg_profile.Profile.reset_coverage ();
  let tables = default_tables target in
  List.iter
    (fun (_, src) ->
      ignore
        (Driver.compile_program ~tables (Gg_frontc.Sema.compile src)
          : Driver.output))
    Gg_frontc.Corpus.fixed_programs;
  let counts = Gg_profile.Profile.production_counts () in
  Gg_profile.Profile.reset_coverage ();
  Gg_profile.Profile.coverage_enabled := saved;
  Gg_specialize.Heat.of_counts counts

let specialized_tables ?dir ?(use_cache = true) ~profile target =
  let b = backend_of target in
  let g = Lazy.force b.Backend.default_grammar in
  let name = Backend.target_name target in
  let spec =
    match
      if use_cache then
        Gg_specialize.Specialize.cache_load ?dir ~target:name ~profile g
      else None
    with
    | Some t -> t
    | None ->
      let dense =
        Gg_profile.Trace.phase "tables.build" (fun () ->
            Gg_tablegen.Tables.build g)
      in
      let t =
        Gg_profile.Trace.phase "tables.specialize" (fun () ->
            Gg_specialize.Specialize.build ~profile dense)
      in
      (* never serve an unproven layout: parity is checked before the
         table is cached or used, so a specializer bug fails loudly
         here instead of selecting wrong instructions *)
      (match Gg_specialize.Specialize.verify t dense with
      | Ok () -> ()
      | Error m ->
        Fmt.failwith "specialized %s tables failed verification: %s" name m);
      if use_cache then
        ignore (Gg_specialize.Specialize.cache_store ?dir ~target:name g t
                 : bool);
      t
  in
  Driver.of_engine ~backend:b (Gg_specialize.Specialize.engine ~grammar:g spec)

(* the (target name, grammar) pairs a cache eviction must keep *)
let live_cache_entries gopts =
  List.map
    (fun t ->
      let b = backend_of t in
      let g =
        if gopts = Gg_vax.Grammar_def.default then
          Lazy.force b.Backend.default_grammar
        else b.Backend.grammar_of gopts
      in
      (Backend.target_name t, g))
    all

exception Sim_error of string
exception Parse_error of int * string

let run_text ~target ?max_steps ?global_types ?ret_type assembly ~entry args :
    Simout.t =
  match target with
  | Backend.Vax -> (
    try
      Gg_vaxsim.Machine.run_text ?max_steps ?global_types ?ret_type assembly
        ~entry args
    with
    | Gg_vaxsim.Machine.Sim_error m -> raise (Sim_error m)
    | Gg_vaxsim.Asmparse.Parse_error (l, m) -> raise (Parse_error (l, m)))
  | Backend.Risc -> (
    try
      Gg_riscsim.Machine.run_text ?max_steps ?global_types ?ret_type assembly
        ~entry args
    with
    | Gg_riscsim.Machine.Sim_error m -> raise (Sim_error m)
    | Gg_riscsim.Asmparse.Parse_error (l, m) -> raise (Parse_error (l, m)))
