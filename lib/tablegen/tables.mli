open Import

(** SLR(1)-style parse tables with the paper's conflict resolution.

    The machine grammar is highly ambiguous; the table generator
    disambiguates by the maximal munch rule (paper section 3.2):
    - shift/reduce conflicts are resolved in favour of the shift;
    - reduce/reduce conflicts are resolved in favour of the longest
      production;
    - remaining ties (equal-length reductions) are kept as candidate
      lists for the pattern matcher to choose among dynamically using
      semantic attributes. *)

type action =
  | Shift of int
  | Reduce of int array
      (** candidate production ids; a singleton unless a tie was left
          to semantics, in which case all candidates have the same rhs
          length (validated by {!of_automaton}) *)
  | Accept
  | Error

type conflicts = {
  shift_reduce : int;  (** resolved in favour of shift *)
  reduce_reduce : int;  (** resolved by the longest-rule preference *)
  semantic_ties : int;  (** equal-length ties left to the matcher *)
}

type t = {
  automaton : Automaton.t;
  firsts : First.t;
  action : action array array;  (** [state][terminal]; eof = n_terms *)
  goto_ : int array array;  (** [state][non-terminal]; -1 = none *)
  conflicts : conflicts;
}

(** Build tables from an automaton (use {!Lr0.build} or
    {!Naive.build}). *)
val of_automaton : Automaton.t -> t

(** Convenience: {!Lr0.build} followed by {!of_automaton}. *)
val build : Grammar.t -> t

val grammar : t -> Grammar.t
val n_states : t -> int
val eof : t -> int

type stats = {
  states : int;
  action_entries : int;  (** non-error action cells *)
  goto_entries : int;
  conflicts : conflicts;
}

val stats : t -> stats
val pp_stats : stats Fmt.t

(** Terminals with a non-error action in a state (for diagnostics). *)
val expected : t -> int -> int list
