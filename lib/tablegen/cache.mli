open Import

(** On-disk cache of packed parse tables, keyed by grammar digest.

    The paper's table construction was the development bottleneck (the
    2 h → 10 min story, sections 7 and 9); even our optimised
    constructor is the dominant start-up cost of every [ggcc] run.  The
    cache makes construction a once-per-grammar event: files are named
    [tables-<target>-<digest>.tbl] under the cache directory, so an
    edited grammar automatically misses, two targets can never collide
    on disk even if their grammars happened to digest identically, and
    a stale file can never be picked up.  {!Packed.load} additionally
    re-verifies the embedded digest.

    The directory is [$GGCG_CACHE_DIR], else [$XDG_CACHE_HOME/ggcg],
    else [~/.cache/ggcg] (a temp-dir fallback covers HOME-less
    environments).  All writes are atomic (write + rename) and all
    failures degrade to rebuilding in memory — the cache can never make
    a compile fail. *)

val default_dir : unit -> string

(** The cache file for this grammar and target (default ["vax"]; the
    file need not exist). *)
val path : ?dir:string -> ?target:string -> Grammar.t -> string

(** The cache file of a {e specialized} table
    ([tables-<target>-<grammar digest>-p<profile digest>.tbl]): the
    profile digest joins the key, so one grammar keeps one entry per
    workload profile and an edited profile automatically misses. *)
val spec_path :
  ?dir:string -> ?target:string -> profile_digest:string -> Grammar.t -> string

(** One cache entry, parsed from its filename (no file is opened except
    to size it). *)
type entry = {
  e_file : string;
  e_target : string;
  e_grammar_digest : string;
  e_profile_digest : string option;  (** [Some _] on specialized entries *)
  e_bytes : int;
}

(** Every [tables-*.tbl] in the cache directory, baseline and
    specialized, sorted by filename. *)
val list : ?dir:string -> unit -> entry list

(** [load g] — the cached tables, or [None] if absent, stale or
    unreadable.  Timed under ["tables.load"] when profiling. *)
val load : ?dir:string -> ?target:string -> Grammar.t -> Packed.t option

(** Best-effort atomic store; returns [false] if the directory is not
    writable. *)
val store : ?dir:string -> ?target:string -> Grammar.t -> Packed.t -> bool

(** Build and pack tables without touching the disk (timed under
    ["tables.build"]). *)
val build : Grammar.t -> Packed.t

(** Evict cache entries that can never be loaded again: every baseline
    [tables-*.tbl] that is not one of the [live] (target, grammar)
    pairs' entries (the grammar changed underneath them, or the file
    predates target-keyed names), every specialized entry whose grammar
    digest is stale {e or} — when [live_profiles] is given — whose
    profile digest is not in it (omitting [live_profiles] keeps any
    specialized entry of a live grammar), and every [tables-*.tmp]
    orphaned by an interrupted store.  Returns the removed files with
    their sizes in bytes, sorted; live entries are never touched and
    unremovable files are skipped silently. *)
val clear_stale :
  ?dir:string ->
  ?live_profiles:string list ->
  (string * Grammar.t) list ->
  (string * int) list

(** The production path: cached tables if present, else build and
    store.  Updates the {!Gg_profile.Profile.counters} hit/miss
    counts. *)
val load_or_build : ?dir:string -> ?target:string -> Grammar.t -> Packed.t
