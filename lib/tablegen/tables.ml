open Import

type action = Shift of int | Reduce of int array | Accept | Error

type conflicts = {
  shift_reduce : int;
  reduce_reduce : int;
  semantic_ties : int;
}

type t = {
  automaton : Automaton.t;
  firsts : First.t;
  action : action array array;
  goto_ : int array array;
  conflicts : conflicts;
}

let of_automaton (auto : Automaton.t) =
  let g = auto.grammar in
  let nt = Symtab.n_terms g.symtab in
  let nn = Symtab.n_nonterms g.symtab in
  let aug = Automaton.augmented_pid g in
  let firsts = First.compute g in
  let eof = First.eof firsts in
  let action = Array.init auto.n_states (fun _ -> Array.make (nt + 1) Error) in
  let goto_ = Array.init auto.n_states (fun _ -> Array.make nn (-1)) in
  let sr = ref 0 and rr = ref 0 and ties = ref 0 in
  let rhs_len pid = Array.length (Grammar.production g pid).rhs in
  let resolve s a pid =
    (* install [Reduce pid] into action.(s).(a) under maximal munch *)
    match action.(s).(a) with
    | Error -> action.(s).(a) <- Reduce [| pid |]
    | Shift _ -> incr sr (* shift wins *)
    | Accept -> ()
    | Reduce existing ->
      let len_new = rhs_len pid in
      let len_old = rhs_len existing.(0) in
      if len_new > len_old then begin
        incr rr;
        action.(s).(a) <- Reduce [| pid |]
      end
      else if len_new < len_old then incr rr
      else begin
        incr ties;
        if not (Array.exists (Int.equal pid) existing) then
          action.(s).(a) <- Reduce (Array.append existing [| pid |])
      end
  in
  for s = 0 to auto.n_states - 1 do
    List.iter (fun (a, target) -> action.(s).(a) <- Shift target)
      auto.term_moves.(s);
    List.iter (fun (n, target) -> goto_.(s).(n) <- target)
      auto.nonterm_moves.(s)
  done;
  for s = 0 to auto.n_states - 1 do
    List.iter
      (fun pid ->
        if pid = aug then action.(s).(eof) <- Accept
        else
          let lhs = (Grammar.production g pid).lhs in
          List.iter
            (fun a ->
              match action.(s).(a) with
              | Shift _ -> incr sr
              | _ -> resolve s a pid)
            (First.follow firsts lhs))
      (Automaton.reductions auto s)
  done;
  (* The matcher resolves a semantic tie by popping one set of
     arguments and letting [choose] pick among the candidates, which is
     only sound if every candidate has the same rhs length.  [resolve]
     guarantees this, but verify it here so any future change to the
     conflict resolution fails loudly at construction time instead of
     corrupting the matcher's stack. *)
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun a cell ->
          match cell with
          | Reduce candidates when Array.length candidates > 1 ->
            let len = rhs_len candidates.(0) in
            if Array.exists (fun pid -> rhs_len pid <> len) candidates then
              Fmt.failwith
                "table construction: semantic tie in state %d on terminal %d \
                 mixes rhs lengths: %s"
                s a
                (String.concat " | "
                   (List.map
                      (fun pid ->
                        Fmt.str "%a" (Grammar.pp_production g)
                          (Grammar.production g pid))
                      (Array.to_list candidates)))
          | _ -> ())
        row)
    action;
  { automaton = auto; firsts; action; goto_; conflicts =
      { shift_reduce = !sr; reduce_reduce = !rr; semantic_ties = !ties } }

let build g = of_automaton (Lr0.build g)

let grammar t = t.automaton.grammar
let n_states t = t.automaton.n_states
let eof t = First.eof t.firsts

type stats = {
  states : int;
  action_entries : int;
  goto_entries : int;
  conflicts : conflicts;
}

let stats t =
  let action_entries =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc a -> match a with Error -> acc | _ -> acc + 1)
          acc row)
      0 t.action
  in
  let goto_entries =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc g -> if g >= 0 then acc + 1 else acc) acc row)
      0 t.goto_
  in
  {
    states = n_states t;
    action_entries;
    goto_entries;
    conflicts = t.conflicts;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "%d states, %d action entries, %d goto entries; conflicts: %d \
     shift/reduce (shift preferred), %d reduce/reduce (longest preferred), \
     %d semantic ties"
    s.states s.action_entries s.goto_entries s.conflicts.shift_reduce
    s.conflicts.reduce_reduce s.conflicts.semantic_ties

let expected t s =
  let row = t.action.(s) in
  let acc = ref [] in
  for a = Array.length row - 1 downto 0 do
    match row.(a) with Error -> () | _ -> acc := a :: !acc
  done;
  !acc
