(** Comb-compressed parse tables — the production representation.

    The CGGWS the paper started from "produced tables that were too
    large" and its matcher "spent too much time … unpacking cumbersome
    tables" (section 2); table size is a recurring concern (sections 6.4
    and 9).  The sparse action/goto matrices are packed by the classic
    row-displacement (comb) technique — each state's row is slid over a
    single value array until its non-error entries fall into free slots,
    with an owner check array making lookups safe.

    LR rows are dominated by reduce entries, so before packing, each
    state's most frequent reduce becomes its {e default action} (the
    classic yacc-style transformation): only shifts, accepts and
    minority reduces are stored as exceptions.  Unlike yacc, a per-cell
    validity bitset (one bit per dense cell, a 1/32 overhead) records
    which cells hold a real action, so error cells answer [Error]
    instead of the default reduction: the packed action function is
    {e identical} to the dense one, including error positions and
    expected sets — the parity Nederhof & Satta require of compact
    tabular representations.

    Lookup stays O(1); {!stats} reports the achieved compression.  The
    tables embed a {!Gg_grammar.Grammar.digest} of their source grammar
    and {!load} rejects files built from any other grammar, even one
    with identical symbol counts. *)

type t

val pack : Tables.t -> t

(** The representation-independent half of {!pack}: validity bits,
    default reductions, per-state exception rows (cells whose code
    differs from the state's default) and the tie-candidate arrays.
    {!pack} lays the rows out densest-first; the profile-guided
    specializer ({!Gg_specialize.Specialize}) lays the same rows out
    hottest-first — both decode identically to the dense table because
    they share this preparation. *)
type prepared = {
  p_n_terms : int;
  p_n_nonterms : int;
  p_n_states : int;
  p_grammar_digest : string;
  p_width : int;  (** action row width, [p_n_terms + 1] for eof *)
  p_valid : Bytes.t;  (** bitset: 1 = the dense action cell is non-Error *)
  p_defaults : int array;
  p_act_rows : (int * (int * int) list) list;
  p_goto_rows : (int * (int * int) list) list;
  p_aux : int array array;
}

val prepare : Tables.t -> prepared

(** First-fit row-displacement packing of [(row, (column, value) list)]
    rows into a (base, check, value) triple.  Rows are packed
    densest-first unless [keep_order] is set, in which case the given
    order is the packing order (the specializer packs hottest-first so
    hot rows share cache lines). *)
val comb_pack :
  ?keep_order:bool ->
  width:int ->
  n_states:int ->
  (int * (int * int) list) list ->
  int array * int array * int array

(** O(1) decoded lookups, equal to the dense table's entries in every
    cell (including [Error] cells — see above). *)
val action : t -> int -> int -> Tables.action

(** The same lookup as an integer code — the matcher's allocation-free
    view of the table.  [0] is error, [3] accept, [(s lsl 2) lor 1]
    shift to state [s], [(p lsl 2) lor 2] reduce by production [p], and
    [((i+1) lsl 2) lor 3] a semantic tie whose candidate productions
    are [tie_candidates t i].  [action t s a = decode (action_code t s a)]
    in every cell. *)
val action_code : t -> int -> int -> int

(** The candidate array of tie [i], in the same order the dense table's
    [Reduce] carries them. *)
val tie_candidates : t -> int -> int array

(** Encode a dense table's action matrix into the same integer codes,
    plus the tie-candidate arrays indexed by the codes' [i] — lets the
    dense engine share the matcher's allocation-free hot loop. *)
val encode_table : Tables.t -> int array array * int array array

(** [has_action t s a] — does state [s] have a non-error action on
    terminal [a]?  O(1) bitset probe. *)
val has_action : t -> int -> int -> bool

(** Terminals with a non-error action in a state, equal to
    {!Tables.expected} on the source tables. *)
val expected : t -> int -> int list

(** The state's default reduction, if any. *)
val default_of : t -> int -> Tables.action option

val goto : t -> int -> int -> int

(** The {!Gg_grammar.Grammar.digest} of the grammar the tables were
    built from. *)
val digest : t -> string

type stats = {
  states : int;
  dense_cells : int;  (** action + goto cells in the dense tables *)
  packed_cells : int;  (** slots used by the packed arrays + bitset *)
  dense_bytes : int;  (** at one word per cell *)
  packed_bytes : int;
  ratio : float;  (** packed / dense *)
}

val stats : t -> stats
val pp_stats : stats Fmt.t

(** The [ggcg-tables-v2] on-disk format: magic, then the marshalled
    tables with the embedded grammar digest.  The tables are built once
    per target machine, as in the paper, and shipped with (or cached
    beside) the compiler. *)
val save : t -> string -> unit

(** Loads and validates: wrong magic, truncation, symbol-count mismatch
    and grammar-digest mismatch (an edited grammar with unchanged
    symbol counts) all raise [Failure] rather than selecting wrong
    instructions. *)
val load : Gg_grammar.Grammar.t -> string -> t
