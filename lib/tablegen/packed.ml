open Import

(* encoded actions: 0 = error; (s<<2)|1 = shift s; (p<<2)|2 = reduce p;
   3 = accept; ((i+1)<<2)|3 = semantic tie, candidates in aux.(i) *)
let encode aux = function
  | Tables.Error -> 0
  | Tables.Shift s -> (s lsl 2) lor 1
  | Tables.Accept -> 3
  | Tables.Reduce [| p |] -> (p lsl 2) lor 2
  | Tables.Reduce candidates ->
    aux := candidates :: !aux;
    ((List.length !aux lsl 2) lor 3 : int)

type t = {
  n_terms : int;  (* action row width is n_terms + 1 (eof) *)
  n_nonterms : int;
  n_states : int;
  grammar_digest : string;  (* Grammar.digest of the source grammar *)
  defaults : int array;  (* encoded default reduce per state; 0 = none *)
  valid : Bytes.t;  (* bitset: 1 = the dense action cell is non-Error *)
  act_base : int array;
  act_check : int array;
  act_value : int array;
  goto_base : int array;
  goto_check : int array;
  goto_value : int array;  (* target + 1; 0 = none *)
  aux : int array array;  (* reversed tie candidate lists *)
}

(* first-fit row displacement packing.  [keep_order] packs the rows in
   the order given (the specializer's heat order) instead of
   densest-first. *)
let comb_pack ?(keep_order = false) ~width ~n_states rows =
  let size = ref (width * 4) in
  let check = ref (Array.make !size (-1)) in
  let value = ref (Array.make !size 0) in
  let grow upto =
    if upto >= !size then begin
      let nsize = max (2 * !size) (upto + width + 1) in
      let ncheck = Array.make nsize (-1) in
      let nvalue = Array.make nsize 0 in
      Array.blit !check 0 ncheck 0 !size;
      Array.blit !value 0 nvalue 0 !size;
      check := ncheck;
      value := nvalue;
      size := nsize
    end
  in
  let base = Array.make n_states 0 in
  (* densest rows first pack tightest *)
  let order =
    if keep_order then rows
    else
      List.sort
        (fun (_, a) (_, b) -> compare (List.length b) (List.length a))
        rows
  in
  let high = ref 0 in
  List.iter
    (fun (s, entries) ->
      match entries with
      | [] -> base.(s) <- 0
      | _ ->
        let fits b =
          List.for_all
            (fun (col, _) ->
              let i = b + col in
              grow i;
              !check.(i) = -1)
            entries
        in
        let rec find b = if fits b then b else find (b + 1) in
        let b = find 0 in
        base.(s) <- b;
        List.iter
          (fun (col, code) ->
            let i = b + col in
            !check.(i) <- s;
            !value.(i) <- code;
            if i + 1 > !high then high := i + 1)
          entries)
    order;
  let trim a = Array.sub a 0 (max 1 !high) in
  (base, trim !check, trim !value)

(* Everything [pack] computes before the comb layout is laid down:
   validity bits, default reductions, exception rows and the tie
   arrays.  The specializer ({!Gg_specialize}) starts from the same
   preparation so its cells decode identically to the packed (and hence
   the dense) table's, whatever layout it chooses. *)
type prepared = {
  p_n_terms : int;
  p_n_nonterms : int;
  p_n_states : int;
  p_grammar_digest : string;
  p_width : int;  (* action row width, [p_n_terms + 1] *)
  p_valid : Bytes.t;
  p_defaults : int array;
  p_act_rows : (int * (int * int) list) list;
      (* per state, the (terminal, code) cells differing from the
         default *)
  p_goto_rows : (int * (int * int) list) list;
  p_aux : int array array;
}

let prepare (tables : Tables.t) =
  let g = Tables.grammar tables in
  let nt = Symtab.n_terms g.Grammar.symtab in
  let nn = Symtab.n_nonterms g.Grammar.symtab in
  let n_states = Tables.n_states tables in
  let aux = ref [] in
  (* one bit per dense action cell: set iff the cell is not Error.  The
     bit distinguishes "no action" from "covered by the default
     reduction", which the comb arrays alone cannot, and is what keeps
    the packed action function identical to the dense one. *)
  let width = nt + 1 in
  let valid = Bytes.make (((n_states * width) + 7) / 8) '\000' in
  let set_valid s a =
    let i = (s * width) + a in
    Bytes.set valid (i lsr 3)
      (Char.chr (Char.code (Bytes.get valid (i lsr 3)) lor (1 lsl (i land 7))))
  in
  for s = 0 to n_states - 1 do
    Array.iteri
      (fun a action ->
        match action with Tables.Error -> () | _ -> set_valid s a)
      tables.Tables.action.(s)
  done;
  (* default reductions: the most frequent reduce action of each row *)
  let defaults = Array.make n_states 0 in
  let act_rows =
    List.init n_states (fun s ->
        let counts = Hashtbl.create 8 in
        Array.iter
          (fun action ->
            match action with
            | Tables.Reduce _ ->
              let k = try Hashtbl.find counts action with Not_found -> 0 in
              Hashtbl.replace counts action (k + 1)
            | _ -> ())
          tables.Tables.action.(s);
        let default =
          Hashtbl.fold
            (fun action k best ->
              match best with
              | Some (_, bk) when bk >= k -> best
              | _ -> Some (action, k))
            counts None
        in
        (match default with
        | Some (action, _) -> defaults.(s) <- encode aux action
        | None -> ());
        let entries = ref [] in
        Array.iteri
          (fun a action ->
            match action with
            | Tables.Error -> ()
            | other ->
              let code = encode aux other in
              if code <> defaults.(s) then entries := (a, code) :: !entries)
          tables.Tables.action.(s);
        (s, !entries))
  in
  let goto_rows =
    List.init n_states (fun s ->
        let entries = ref [] in
        Array.iteri
          (fun n target ->
            if target >= 0 then entries := (n, target + 1) :: !entries)
          tables.Tables.goto_.(s);
        (s, !entries))
  in
  {
    p_n_terms = nt;
    p_n_nonterms = nn;
    p_n_states = n_states;
    p_grammar_digest = Grammar.digest g;
    p_width = width;
    p_valid = valid;
    p_defaults = defaults;
    p_act_rows = act_rows;
    p_goto_rows = goto_rows;
    p_aux = Array.of_list (List.rev !aux);
  }

let pack (tables : Tables.t) =
  let p = prepare tables in
  let act_base, act_check, act_value =
    comb_pack ~width:p.p_width ~n_states:p.p_n_states p.p_act_rows
  in
  let goto_base, goto_check, goto_value =
    comb_pack ~width:p.p_n_nonterms ~n_states:p.p_n_states p.p_goto_rows
  in
  {
    n_terms = p.p_n_terms;
    n_nonterms = p.p_n_nonterms;
    n_states = p.p_n_states;
    grammar_digest = p.p_grammar_digest;
    defaults = p.p_defaults;
    valid = p.p_valid;
    act_base;
    act_check;
    act_value;
    goto_base;
    goto_check;
    goto_value;
    aux = p.p_aux;
  }

let decode t code =
  if code = 0 then Tables.Error
  else if code = 3 then Tables.Accept
  else
    match code land 3 with
    | 1 -> Tables.Shift (code lsr 2)
    | 2 -> Tables.Reduce [| code lsr 2 |]
    | 3 -> Tables.Reduce t.aux.((code lsr 2) - 1)
    | _ -> Tables.Error

let has_action t s a =
  let i = (s * (t.n_terms + 1)) + a in
  Char.code (Bytes.unsafe_get t.valid (i lsr 3)) land (1 lsl (i land 7)) <> 0

(* act_check and act_value (and the goto pair) are trimmed to the same
   length, so one range check on [i] covers the unsafe reads of both.
   The validity probe is [has_action] inlined by hand: this runs once
   per matcher action and the compiler will not inline it across the
   call. *)
let action_code t s a =
  let b = (s * (t.n_terms + 1)) + a in
  if Char.code (Bytes.unsafe_get t.valid (b lsr 3)) land (1 lsl (b land 7)) = 0
  then 0
  else
    let i = t.act_base.(s) + a in
    if i < 0 || i >= Array.length t.act_check then t.defaults.(s)
    else if Array.unsafe_get t.act_check i <> s then t.defaults.(s)
    else Array.unsafe_get t.act_value i

let action t s a = decode t (action_code t s a)

let tie_candidates t i = t.aux.(i)

let encode_table (tables : Tables.t) =
  let aux = ref [] in
  let codes = Array.map (Array.map (encode aux)) tables.Tables.action in
  (codes, Array.of_list (List.rev !aux))

let expected t s =
  let acc = ref [] in
  for a = t.n_terms downto 0 do
    if has_action t s a then acc := a :: !acc
  done;
  !acc

let digest t = t.grammar_digest

let default_of t s =
  match decode t t.defaults.(s) with
  | Tables.Error -> None
  | other -> Some other

let goto t s n =
  let i = t.goto_base.(s) + n in
  if i < 0 || i >= Array.length t.goto_check then -1
  else if Array.unsafe_get t.goto_check i <> s then -1
  else Array.unsafe_get t.goto_value i - 1

type stats = {
  states : int;
  dense_cells : int;
  packed_cells : int;
  dense_bytes : int;
  packed_bytes : int;
  ratio : float;
}

let stats t =
  let dense_cells = t.n_states * (t.n_terms + 1 + t.n_nonterms) in
  let word = 4 in
  let packed_cells =
    (2 * Array.length t.act_check)
    + (2 * Array.length t.goto_check)
    + (3 * t.n_states) (* the base and default arrays *)
    + ((Bytes.length t.valid + word - 1) / word) (* the validity bitset *)
  in
  {
    states = t.n_states;
    dense_cells;
    packed_cells;
    dense_bytes = dense_cells * word;
    packed_bytes = packed_cells * word;
    ratio = float_of_int packed_cells /. float_of_int dense_cells;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "%d states: %d dense cells (%d KB) -> %d packed cells (%d KB), %.2fx"
    s.states s.dense_cells (s.dense_bytes / 1024) s.packed_cells
    (s.packed_bytes / 1024) s.ratio

let magic = "ggcg-tables-v2"

let save t path =
  let oc = open_out_bin path in
  output_string oc magic;
  Marshal.to_channel oc t [];
  close_out oc

let load (g : Grammar.t) path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m =
        try really_input_string ic (String.length magic)
        with End_of_file -> Fmt.failwith "%s: not a ggcg table file" path
      in
      if m <> magic then
        Fmt.failwith "%s: not a ggcg-tables-v2 file (found %S)" path m;
      let t : t =
        try Marshal.from_channel ic
        with End_of_file | Failure _ ->
          Fmt.failwith "%s: truncated or corrupt table file" path
      in
      if
        t.n_terms <> Symtab.n_terms g.Grammar.symtab
        || t.n_nonterms <> Symtab.n_nonterms g.Grammar.symtab
      then Fmt.failwith "%s: tables do not match this grammar" path;
      let want = Grammar.digest g in
      if t.grammar_digest <> want then
        Fmt.failwith
          "%s: stale tables: built for grammar %s but this grammar is %s \
           (rebuild with mdgtool cache or delete the file)"
          path t.grammar_digest want;
      t)
