open Import
module Profile = Gg_profile.Profile

let default_dir () =
  match Sys.getenv_opt "GGCG_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> Filename.concat d "ggcg"
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" ->
        Filename.concat (Filename.concat h ".cache") "ggcg"
      | _ -> Filename.concat (Filename.get_temp_dir_name ()) "ggcg-cache"))

let path ?dir ?(target = "vax") (g : Grammar.t) =
  let dir = match dir with Some d -> d | None -> default_dir () in
  Filename.concat dir (Fmt.str "tables-%s-%s.tbl" target (Grammar.digest g))

(* specialized tables are keyed by the profile digest on top of the
   baseline (target, grammar digest) key, so one grammar can keep one
   specialized entry per workload profile *)
let spec_path ?dir ?(target = "vax") ~profile_digest (g : Grammar.t) =
  let dir = match dir with Some d -> d | None -> default_dir () in
  Filename.concat dir
    (Fmt.str "tables-%s-%s-p%s.tbl" target (Grammar.digest g) profile_digest)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let load ?dir ?target (g : Grammar.t) =
  let file = path ?dir ?target g in
  if not (Sys.file_exists file) then None
  else
    match Gg_profile.Trace.phase "tables.load" (fun () -> Packed.load g file) with
    | t -> Some t
    | exception (Failure _ | Sys_error _) -> None

let store ?dir ?target (g : Grammar.t) (t : Packed.t) =
  let file = path ?dir ?target g in
  try
    mkdir_p (Filename.dirname file);
    (* write-then-rename so concurrent compiles never see a torn file *)
    let tmp =
      Filename.temp_file ~temp_dir:(Filename.dirname file) "tables-" ".tmp"
    in
    Packed.save t tmp;
    Sys.rename tmp file;
    true
  with Sys_error _ -> false

let build (g : Grammar.t) =
  Gg_profile.Trace.phase "tables.build" (fun () -> Packed.pack (Tables.build g))

let file_size file =
  match open_in_bin file with
  | ic ->
    let n = in_channel_length ic in
    close_in ic;
    n
  | exception Sys_error _ -> 0

(* [tables-<target>-<digest>.tbl] is a baseline entry;
   [tables-<target>-<digest>-p<digest>.tbl] a specialized one.  Parsed
   from the filename alone so listing and eviction never open files. *)
type entry = {
  e_file : string;
  e_target : string;
  e_grammar_digest : string;
  e_profile_digest : string option;
  e_bytes : int;
}

let parse_name name =
  if
    not
      (String.starts_with ~prefix:"tables-" name
      && Filename.check_suffix name ".tbl")
  then None
  else
    let core =
      String.sub name 7 (String.length name - 7 - String.length ".tbl")
    in
    match String.split_on_char '-' core with
    | [ target; gdigest ] -> Some (target, gdigest, None)
    | [ target; gdigest; p ]
      when String.length p > 1 && p.[0] = 'p' ->
      Some (target, gdigest, Some (String.sub p 1 (String.length p - 1)))
    | _ -> None

let list ?dir () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.to_list entries
  |> List.filter_map (fun name ->
         match parse_name name with
         | None -> None
         | Some (target, gdigest, pdigest) ->
           let file = Filename.concat dir name in
           Some
             {
               e_file = file;
               e_target = target;
               e_grammar_digest = gdigest;
               e_profile_digest = pdigest;
               e_bytes = file_size file;
             })
  |> List.sort compare

let clear_stale ?dir ?live_profiles (live : (string * Grammar.t) list) =
  let dir = match dir with Some d -> d | None -> default_dir () in
  let live_names =
    List.map
      (fun (target, g) -> Filename.basename (path ~dir ~target g))
      live
  in
  let live_keys =
    List.map (fun (target, g) -> (target, Grammar.digest g)) live
  in
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.to_list entries
  |> List.filter_map (fun name ->
         let stale_tbl =
           match parse_name name with
           | Some (target, gdigest, Some pdigest) ->
             (* a specialized entry is stale if its grammar is, or —
                when the caller declared which profiles are live — if
                its profile is not one of them *)
             (not (List.mem (target, gdigest) live_keys))
             || (match live_profiles with
                | None -> false
                | Some ps -> not (List.mem pdigest ps))
           | Some _ | None ->
             String.starts_with ~prefix:"tables-" name
             && Filename.check_suffix name ".tbl"
             && not (List.mem name live_names)
         in
         (* interrupted atomic stores leave tables-*.tmp behind *)
         let orphan_tmp =
           String.starts_with ~prefix:"tables-" name
           && Filename.check_suffix name ".tmp"
         in
         if not (stale_tbl || orphan_tmp) then None
         else
           let file = Filename.concat dir name in
           let size = file_size file in
           match Sys.remove file with
           | () -> Some (file, size)
           | exception Sys_error _ -> None)
  |> List.sort compare

let load_or_build ?dir ?target (g : Grammar.t) =
  let ctrs = Profile.counters () in
  match load ?dir ?target g with
  | Some t ->
    ctrs.Profile.cache_hits <- ctrs.Profile.cache_hits + 1;
    t
  | None ->
    ctrs.Profile.cache_misses <- ctrs.Profile.cache_misses + 1;
    let t = build g in
    ignore (store ?dir ?target g t);
    t
