open Import

(** The instruction pattern matcher: a table-driven shift/reduce parser
    invoked once per expression tree (paper section 3.3).

    The matcher is generic in the semantic values ['a] carried on the
    parse stack — the code generator instantiates them with operand
    descriptors.  Each shift turns a token into a value; each reduction
    condenses the right-hand-side values into one left-hand-side value
    (paper section 5.2).  When the tables left a reduce/reduce tie to
    semantics, [choose] picks the production dynamically. *)

type 'a callbacks = {
  on_shift : Termname.token -> 'a;
  on_reduce : Grammar.production -> 'a array -> 'a;
  choose : Grammar.production array -> 'a array list -> int;
      (** [choose candidates argss] returns the index of the production
          to reduce by; [argss] are the would-be argument arrays, in
          candidate order.  Only called for genuine ties. *)
}

(** One parser action, for tracing (the paper's Appendix prints this
    sequence for [a := 27 + b]). *)
type step =
  | Sshift of string  (** terminal shifted *)
  | Sreduce of int  (** production id reduced *)
  | Saccept

type error = {
  at : int;  (** index of the offending token, or input length for eof *)
  token : string;  (** terminal name, or ["<eof>"] *)
  state : int;
  expected : string list;  (** terminals with actions in that state *)
}

exception Reject of error

type 'a outcome = { value : 'a; trace : step list }

(** A table representation bound to its lookup functions.  The matcher
    is driven through this record, so the dense and the comb-packed
    representations are interchangeable end to end — the production
    path runs packed ({!packed_engine}); the dense form is kept for
    differential testing ({!engine}). *)
type engine = {
  eng_grammar : Grammar.t;
  eng_eof : int;  (** terminal index of the end marker *)
  eng_action : int -> int -> Tables.action;
      (** decoded view; drives {!run_engine_reference} *)
  eng_code : int -> int -> int;
      (** the same cell as an integer code
          ({!Gg_tablegen.Packed.action_code}'s encoding); drives the
          production hot loop without allocating a [Tables.action] per
          probe *)
  eng_tie : int -> int array;
      (** candidate productions of semantic tie [i] in the codes *)
  eng_goto : int -> int -> int;
  eng_expected : int -> int list;
      (** terminals with a non-error action, for diagnostics *)
  eng_intern : string -> int;
      (** terminal id of a token name, [-1] if unknown; a
          pointer-equality cache over {!Gg_grammar.Symtab.term_id},
          safe to share between domains *)
}

val engine : Tables.t -> engine

(** The terminal interner the built-in engines use: a small
    direct-mapped pointer cache in front of {!Gg_grammar.Symtab.term_id},
    safe to share between domains.  Exposed so external table
    representations (the profile-guided specializer) can build engines
    with the same per-token lookup cost as {!packed_engine}. *)
val interner : Gg_grammar.Symtab.t -> string -> int

(** The packed engine is behaviourally identical to the dense one,
    including error positions and expected sets (see
    {!Gg_tablegen.Packed}). *)
val packed_engine : grammar:Grammar.t -> Gg_tablegen.Packed.t -> engine

(** [run_engine engine callbacks tokens] parses one linearised tree.
    Returns the semantic value of the start symbol.  Raises {!Reject}
    on a syntactic block — which, per the paper, indicates a bug in the
    machine description, not in the program being compiled.

    The loop is allocation-free per action: the parse stack is a pair
    of preallocated arrays, the token stream is interned to terminal
    ids once before the loop, and the lookahead is carried across
    consecutive reductions. *)
val run_engine :
  ?trace:bool -> engine -> 'a callbacks -> Termname.token list -> 'a outcome

(** The pre-optimisation shift/reduce loop — a [(state, value)] list
    stack with a symtab lookup per action.  Behaviourally identical to
    {!run_engine} (same values, traces and rejects), with one caveat:
    the loop backstop here budgets every action where {!run_engine}
    budgets reductions only, so on a runaway chain-rule loop both
    reject with token ["<looping>"] but may report a different [state].
    Kept only as the baseline for differential tests and the throughput
    benchmark. *)
val run_engine_reference :
  ?trace:bool -> engine -> 'a callbacks -> Termname.token list -> 'a outcome

(** Linearise a tree and run the matcher over it. *)
val run_tree_engine :
  ?trace:bool ->
  ?special_constants:bool ->
  engine ->
  'a callbacks ->
  Tree.t ->
  'a outcome

(** [run tables] = [run_engine (engine tables)]. *)
val run :
  ?trace:bool -> Tables.t -> 'a callbacks -> Termname.token list -> 'a outcome

(** [run_packed packed ~grammar] =
    [run_engine (packed_engine ~grammar packed)]. *)
val run_packed :
  ?trace:bool ->
  Gg_tablegen.Packed.t ->
  grammar:Grammar.t ->
  'a callbacks ->
  Termname.token list ->
  'a outcome

(** [run_tree tables] = [run_tree_engine (engine tables)]. *)
val run_tree :
  ?trace:bool ->
  ?special_constants:bool ->
  Tables.t ->
  'a callbacks ->
  Tree.t ->
  'a outcome

val pp_step : Grammar.t -> step Fmt.t
val pp_trace : Grammar.t -> step list Fmt.t
val pp_error : error Fmt.t
