open Import
module Profile = Gg_profile.Profile
module Trace = Gg_profile.Trace
module Metrics = Gg_profile.Metrics

type 'a callbacks = {
  on_shift : Termname.token -> 'a;
  on_reduce : Grammar.production -> 'a array -> 'a;
  choose : Grammar.production array -> 'a array list -> int;
}

type step = Sshift of string | Sreduce of int | Saccept

type error = {
  at : int;
  token : string;
  state : int;
  expected : string list;
}

exception Reject of error

type 'a outcome = { value : 'a; trace : step list }

(* The generic driver, abstracted over table access so both the dense
   and the packed representations can drive it.

   The shift/reduce loop is the compiler's hottest code (paper Fig. 2:
   ~half of code generation), so it allocates nothing per action: the
   parse stack is a pair of preallocated growable arrays instead of a
   (state, value) list, each token is interned to its terminal id
   exactly once — when it becomes the lookahead, which is then carried
   through consecutive reductions instead of being re-derived at every
   step ({!Symtab.term_id}, allocation free) — and actions arrive as
   integer codes ({!Gg_tablegen.Packed.action_code}) rather than
   [Tables.action] blocks, which the packed lookup would otherwise
   rebuild on every probe.  The only per-reduction allocation left is
   the argument array handed to [on_reduce], which is part of the
   callback contract. *)
(* The state half of the parse stack is a monomorphic int array, so
   each domain keeps one across runs instead of allocating per tree
   (the ['a] value half cannot be reused without erasure tricks).
   [busy] guards re-entrancy: a callback that runs the matcher again
   gets a fresh allocation rather than the in-use scratch. *)
type state_scratch = { mutable st : int array; mutable busy : bool }

let scratch_key =
  Domain.DLS.new_key (fun () -> { st = [||]; busy = false })

let run_with ?(trace = false) ~(g : Grammar.t) ~eof
    ~(intern : string -> int) ~(code : int -> int -> int)
    ~(tie : int -> int array) ~(goto : int -> int -> int)
    ~(expected : int -> int list) cb tokens =
  let ctrs = Profile.counters () in
  let reds0 = ctrs.Profile.reduces in
  let t0 = if !Metrics.enabled then Trace.now_us () else 0. in
  let n = List.length tokens in
  (* the parse stack; stack depth is bounded by the number of shifts,
     so the initial capacity already fits any well-formed run *)
  let cap = ref (max 16 (n + 1)) in
  let scratch = Domain.DLS.get scratch_key in
  let reusing = not scratch.busy in
  if reusing then scratch.busy <- true;
  let st_states =
    ref
      (if reusing && Array.length scratch.st >= !cap then begin
         cap := Array.length scratch.st;
         scratch.st
       end
       else Array.make !cap 0)
  in
  let st_values = ref [||] (* allocated on the first push *) in
  let sp = ref 0 in
  let hw = ref 0 in
  let state = ref 0 in
  let steps = ref [] in
  let record s = if trace then steps := s :: !steps in
  let push s v =
    if Array.length !st_values = 0 then st_values := Array.make !cap v
    else if !sp = !cap then begin
      let cap' = 2 * !cap in
      let states' = Array.make cap' 0 in
      Array.blit !st_states 0 states' 0 !sp;
      let values' = Array.make cap' v in
      Array.blit !st_values 0 values' 0 !sp;
      st_states := states';
      st_values := values';
      cap := cap'
    end;
    (* [!sp < !cap] by the growth check just above *)
    Array.unsafe_set !st_states !sp s;
    Array.unsafe_set !st_values !sp v;
    incr sp;
    if !sp > !hw then hw := !sp
  in
  let expected_names s =
    List.map
      (fun a -> if a = eof then "<eof>" else Symtab.term_name g.symtab a)
      (expected s)
  in
  let reject i a =
    ctrs.Profile.rejects <- ctrs.Profile.rejects + 1;
    raise
      (Reject
         {
           at = i;
           token = (if a = eof then "<eof>" else Symtab.term_name g.symtab a);
           state = !state;
           expected = expected_names !state;
         })
  in
  (* A grammar bug (a chain-rule loop the table generator failed to
     catch, paper section 3.2) could make the matcher reduce forever
     without consuming input; bound the total number of actions. *)
  (* Shifts cannot loop — each consumes a token and eof never shifts —
     so bounding reductions bounds the whole run, and the shift path
     skips the check. *)
  let budget = ref ((64 * n) + 1024) in
  (* [rest] is the unconsumed token suffix starting at position [i];
     [a] is the interned lookahead ([eof] once [rest] is empty) *)
  let rec loop rest i a =
    let c = code !state a in
    if c = 0 then reject i a
    else
      match c land 3 with
      | 1 -> (
        (* shift *)
        match rest with
        | tok :: rest' ->
          ctrs.Profile.shifts <- ctrs.Profile.shifts + 1;
          (* build the step only under the flag: [record (Sshift ...)]
             would allocate the block even with tracing off *)
          if trace then record (Sshift tok.Termname.term);
          push !state (cb.on_shift tok);
          state := c lsr 2;
          next rest' (i + 1)
        | [] -> assert false (* a shift on eof: not a valid table *))
      | 2 ->
        (* reduce by a single production *)
        ctrs.Profile.reduces <- ctrs.Profile.reduces + 1;
        let p = Grammar.production g (c lsr 2) in
        let len = Array.length p.Grammar.rhs in
        (* popped entries stay in place; [sp] is cut after the goto *)
        assert (len > 0 && len <= !sp);
        let args =
          (* chain rules dominate the parse; build their singleton
             directly rather than through Array.sub *)
          if len = 1 then [| Array.unsafe_get !st_values (!sp - 1) |]
          else Array.sub !st_values (!sp - len) len
        in
        reduce p args rest i a
      | 3 when c = 3 ->
        record Saccept;
        if !sp = 1 then !st_values.(0) else assert false
      | 3 ->
        (* a genuine tie: all candidates have equal rhs length.  The
           table constructor validates this invariant; re-check it
           here because tables can also arrive from a file, and a
           violation would silently corrupt the stack. *)
        ctrs.Profile.reduces <- ctrs.Profile.reduces + 1;
        ctrs.Profile.semantic_choices <- ctrs.Profile.semantic_choices + 1;
        let candidates = tie ((c lsr 2) - 1) in
        let prods = Array.map (Grammar.production g) candidates in
        let len = Array.length prods.(0).rhs in
        Array.iter
          (fun (p : Grammar.production) ->
            if Array.length p.rhs <> len then
              Fmt.failwith
                "matcher: semantic tie in state %d mixes rhs lengths \
                 (corrupt tables?): %a vs %a"
                !state (Grammar.pp_production g) prods.(0)
                (Grammar.pp_production g) p)
          prods;
        assert (len > 0 && len <= !sp);
        let args = Array.sub !st_values (!sp - len) len in
        let idx = cb.choose prods [ args ] in
        if idx < 0 || idx >= Array.length candidates then
          Fmt.failwith "matcher: choose returned %d for %d candidates" idx
            (Array.length candidates);
        reduce prods.(idx) args rest i a
      | _ -> assert false (* tag 0 with c <> 0: not a valid code *)
  and reduce p args rest i a =
    decr budget;
    if !budget < 0 then
      raise
        (Reject
           {
             at = min i (n - 1) |> max 0;
             token = "<looping>";
             state = !state;
             expected = expected_names !state;
           });
    Profile.record_production p.Grammar.id;
    (* [0 <= base < !sp]: the callers assert [0 < len <= !sp] *)
    let base = !sp - Array.length p.Grammar.rhs in
    let exposed = Array.unsafe_get !st_states base in
    if trace then record (Sreduce p.Grammar.id);
    let v = cb.on_reduce p args in
    let target = goto exposed p.Grammar.lhs in
    if target < 0 then reject i a;
    (* pop the rhs and push the lhs value in one move *)
    Array.unsafe_set !st_values base v;
    sp := base + 1;
    state := target;
    loop rest i a
  and next rest i =
    match rest with
    | [] -> loop [] i eof
    | tok :: _ ->
      let a = intern tok.Termname.term in
      if a < 0 then
        (* unknown terminal: reject the moment it becomes the lookahead *)
        raise
          (Reject
             {
               at = i;
               token = tok.Termname.term;
               state = !state;
               expected = [];
             });
      loop rest i a
  in
  ctrs.Profile.matcher_runs <- ctrs.Profile.matcher_runs + 1;
  let value =
    (* hand the (possibly grown) state array back to the scratch even
       when the run rejects *)
    Fun.protect
      ~finally:(fun () ->
        if reusing then begin
          scratch.st <- !st_states;
          scratch.busy <- false
        end)
      (fun () -> next tokens 0)
  in
  (* end-of-run histogram observations, gated so the hot loop stays
     allocation-free with telemetry off; rejects raise past this point
     and are deliberately not observed *)
  if !Metrics.enabled then begin
    Metrics.observe Metrics.tree_match_us
      (int_of_float (Trace.now_us () -. t0));
    Metrics.observe Metrics.tree_reductions (ctrs.Profile.reduces - reds0);
    Metrics.observe Metrics.stack_high_water !hw
  end;
  { value; trace = List.rev !steps }

(* The pre-optimisation loop: a (state, value) list stack and a symtab
   lookup per action.  Kept verbatim as the baseline the optimised loop
   is differentially tested against (suite_parallel) and measured
   against (the THRU benchmark); not a production path. *)
let run_with_reference ?(trace = false) ~(g : Grammar.t) ~eof
    ~(action : int -> int -> Tables.action) ~(goto : int -> int -> int)
    ~(expected : int -> int list) cb tokens =
  let ctrs = Profile.counters () in
  let tokens = Array.of_list tokens in
  let n = Array.length tokens in
  let stack = ref [] in
  let state = ref 0 in
  let steps = ref [] in
  let record s = if trace then steps := s :: !steps in
  let term_id i =
    if i >= n then eof
    else
      let name = tokens.(i).Termname.term in
      match Symtab.find g.symtab name with
      | Some (Symtab.T a) -> a
      | Some (Symtab.N _) | None ->
        raise (Reject { at = i; token = name; state = !state; expected = [] })
  in
  let expected_names s =
    List.map
      (fun a -> if a = eof then "<eof>" else Symtab.term_name g.symtab a)
      (expected s)
  in
  let reject i a =
    ctrs.Profile.rejects <- ctrs.Profile.rejects + 1;
    raise
      (Reject
         {
           at = i;
           token = (if a = eof then "<eof>" else Symtab.term_name g.symtab a);
           state = !state;
           expected = expected_names !state;
         })
  in
  let budget = ref ((64 * n) + 1024) in
  let rec loop i =
    decr budget;
    if !budget < 0 then
      raise
        (Reject
           {
             at = min i (n - 1) |> max 0;
             token = "<looping>";
             state = !state;
             expected = expected_names !state;
           });
    let a = term_id i in
    match action !state a with
    | Tables.Shift s' ->
      ctrs.Profile.shifts <- ctrs.Profile.shifts + 1;
      record (Sshift tokens.(i).Termname.term);
      stack := (!state, cb.on_shift tokens.(i)) :: !stack;
      state := s';
      loop (i + 1)
    | Tables.Reduce candidates ->
      ctrs.Profile.reduces <- ctrs.Profile.reduces + 1;
      let pop_args len =
        let rec go k acc st =
          if k = 0 then (acc, st)
          else
            match st with
            | (s, v) :: rest -> go (k - 1) ((s, v) :: acc) rest
            | [] -> assert false
        in
        let popped, rest = go len [] !stack in
        (Array.of_list (List.map snd popped), popped, rest)
      in
      let pid =
        if Array.length candidates = 1 then candidates.(0)
        else begin
          ctrs.Profile.semantic_choices <- ctrs.Profile.semantic_choices + 1;
          let prods = Array.map (Grammar.production g) candidates in
          let len = Array.length prods.(0).rhs in
          Array.iter
            (fun (p : Grammar.production) ->
              if Array.length p.rhs <> len then
                Fmt.failwith
                  "matcher: semantic tie in state %d mixes rhs lengths \
                   (corrupt tables?): %a vs %a"
                  !state (Grammar.pp_production g) prods.(0)
                  (Grammar.pp_production g) p)
            prods;
          let args, _, _ = pop_args len in
          let idx = cb.choose prods [ args ] in
          if idx < 0 || idx >= Array.length candidates then
            Fmt.failwith
              "matcher: choose returned %d for %d candidates" idx
              (Array.length candidates);
          candidates.(idx)
        end
      in
      Profile.record_production pid;
      let p = Grammar.production g pid in
      let len = Array.length p.rhs in
      let args, popped, rest = pop_args len in
      let exposed =
        match popped with (s, _) :: _ -> s | [] -> assert false
      in
      record (Sreduce pid);
      let v = cb.on_reduce p args in
      let target = goto exposed p.Grammar.lhs in
      if target < 0 then reject i a;
      stack := (exposed, v) :: rest;
      state := target;
      loop i
    | Tables.Accept -> (
      record Saccept;
      match !stack with
      | [ (_, v) ] -> v
      | _ -> assert false)
    | Tables.Error -> reject i a
  in
  ctrs.Profile.matcher_runs <- ctrs.Profile.matcher_runs + 1;
  let value = loop 0 in
  { value; trace = List.rev !steps }

type engine = {
  eng_grammar : Grammar.t;
  eng_eof : int;
  eng_action : int -> int -> Tables.action;
  eng_code : int -> int -> int;
  eng_tie : int -> int array;
  eng_goto : int -> int -> int;
  eng_expected : int -> int list;
  eng_intern : string -> int;
}

(* Terminal interning with a small direct-mapped cache in front of the
   symtab hashtable.  Token names are shared string constants
   ({!Termname}), so after the first miss a name is recognised by
   pointer.  Each slot holds one immutable (name, id) pair and an
   update is a single pointer store, so the cache is safe to share
   between domains: a racing reader sees either the old or the new
   pair, and a lost update only costs a future miss.  Ids are
   cache-independent, so parallel compiles stay deterministic. *)
let interner symtab =
  let cache = Array.make 64 ("", -2) in
  fun s ->
    let slot = (Char.code (String.unsafe_get s 0) + String.length s) land 63 in
    let cs, cid = Array.unsafe_get cache slot in
    if cs == s then cid
    else begin
      let id = Symtab.term_id symtab s in
      Array.unsafe_set cache slot (s, id);
      id
    end

let engine (tables : Tables.t) =
  (* encode once at construction so the dense engine shares the
     allocation-free hot loop with the packed one *)
  let codes, aux = Gg_tablegen.Packed.encode_table tables in
  let g = Tables.grammar tables in
  {
    eng_grammar = g;
    eng_eof = Tables.eof tables;
    eng_action = (fun s a -> tables.Tables.action.(s).(a));
    eng_code = (fun s a -> codes.(s).(a));
    eng_tie = (fun i -> aux.(i));
    eng_goto = (fun s n -> tables.Tables.goto_.(s).(n));
    eng_expected = Tables.expected tables;
    eng_intern = interner g.Grammar.symtab;
  }

let packed_engine ~grammar (packed : Gg_tablegen.Packed.t) =
  let g : Grammar.t = grammar in
  (* eta-expanded on purpose: a partial application would compile to an
     arity-1 curry chain, costing two indirect calls per table probe in
     the hot loop; these are direct arity-2 closures.  [eng_action] is
     off the production path (it drives {!run_engine_reference} only)
     and keeps its historical shape. *)
  {
    eng_grammar = g;
    eng_eof = Symtab.n_terms g.Grammar.symtab;
    eng_action = Gg_tablegen.Packed.action packed;
    eng_code = (fun s a -> Gg_tablegen.Packed.action_code packed s a);
    eng_tie = (fun i -> Gg_tablegen.Packed.tie_candidates packed i);
    eng_goto = (fun s n -> Gg_tablegen.Packed.goto packed s n);
    eng_expected = (fun s -> Gg_tablegen.Packed.expected packed s);
    eng_intern = interner g.Grammar.symtab;
  }

let run_engine ?trace e cb tokens =
  run_with ?trace ~g:e.eng_grammar ~eof:e.eng_eof ~intern:e.eng_intern
    ~code:e.eng_code ~tie:e.eng_tie ~goto:e.eng_goto
    ~expected:e.eng_expected cb tokens

let run_engine_reference ?trace e cb tokens =
  run_with_reference ?trace ~g:e.eng_grammar ~eof:e.eng_eof
    ~action:e.eng_action ~goto:e.eng_goto ~expected:e.eng_expected cb tokens

let run_tree_engine ?trace ?special_constants e cb tree =
  run_engine ?trace e cb (Termname.linearize ?special_constants tree)

let run ?trace (tables : Tables.t) cb tokens =
  run_engine ?trace (engine tables) cb tokens

let run_packed ?trace (packed : Gg_tablegen.Packed.t) ~grammar cb tokens =
  run_engine ?trace (packed_engine ~grammar packed) cb tokens

let run_tree ?trace ?special_constants tables cb tree =
  run ?trace tables cb (Termname.linearize ?special_constants tree)

let pp_step g ppf = function
  | Sshift name -> Fmt.pf ppf "shift  %s" name
  | Sreduce pid ->
    Fmt.pf ppf "reduce %a" (Grammar.pp_production g) (Grammar.production g pid)
  | Saccept -> Fmt.string ppf "accept"

let pp_trace g ppf steps =
  Fmt.(list ~sep:(any "@\n") (pp_step g)) ppf steps

let pp_error ppf e =
  Fmt.pf ppf
    "syntactic block at token %d (%s) in state %d; expected one of: %a" e.at
    e.token e.state
    Fmt.(list ~sep:comma string)
    e.expected
