open Import
module Profile = Gg_profile.Profile

type 'a callbacks = {
  on_shift : Termname.token -> 'a;
  on_reduce : Grammar.production -> 'a array -> 'a;
  choose : Grammar.production array -> 'a array list -> int;
}

type step = Sshift of string | Sreduce of int | Saccept

type error = {
  at : int;
  token : string;
  state : int;
  expected : string list;
}

exception Reject of error

type 'a outcome = { value : 'a; trace : step list }

(* the generic driver, abstracted over table access so both the dense
   and the packed representations can drive it *)
let run_with ?(trace = false) ~(g : Grammar.t) ~eof
    ~(action : int -> int -> Tables.action) ~(goto : int -> int -> int)
    ~(expected : int -> int list) cb tokens =
  let tokens = Array.of_list tokens in
  let n = Array.length tokens in
  (* the value slot of the bottom entry is never read *)
  let stack = ref [] in
  let state = ref 0 in
  let steps = ref [] in
  let record s = if trace then steps := s :: !steps in
  let term_id i =
    if i >= n then eof
    else
      let name = tokens.(i).Termname.term in
      match Symtab.find g.symtab name with
      | Some (Symtab.T a) -> a
      | Some (Symtab.N _) | None ->
        raise
          (Reject
             {
               at = i;
               token = name;
               state = !state;
               expected = [];
             })
  in
  let expected_names s =
    List.filter_map
      (fun a ->
        if a = eof then Some "<eof>" else Some (Symtab.term_name g.symtab a))
      (expected s)
  in
  let reject i a =
    Profile.counters.Profile.rejects <- Profile.counters.Profile.rejects + 1;
    raise
      (Reject
         {
           at = i;
           token = (if a = eof then "<eof>" else Symtab.term_name g.symtab a);
           state = !state;
           expected = expected_names !state;
         })
  in
  (* A grammar bug (a chain-rule loop the table generator failed to
     catch, paper section 3.2) could make the matcher reduce forever
     without consuming input; bound the total number of actions. *)
  let budget = ref ((64 * n) + 1024) in
  let rec loop i =
    decr budget;
    if !budget < 0 then
      raise
        (Reject
           {
             at = min i (n - 1) |> max 0;
             token = "<looping>";
             state = !state;
             expected = expected_names !state;
           });
    let a = term_id i in
    match action !state a with
    | Tables.Shift s' ->
      Profile.counters.Profile.shifts <- Profile.counters.Profile.shifts + 1;
      record (Sshift tokens.(i).Termname.term);
      stack := (!state, cb.on_shift tokens.(i)) :: !stack;
      state := s';
      loop (i + 1)
    | Tables.Reduce candidates ->
      Profile.counters.Profile.reduces <- Profile.counters.Profile.reduces + 1;
      let pop_args len =
        (* returns (args, remaining stack, exposed state) *)
        let rec go k acc st =
          if k = 0 then (acc, st)
          else
            match st with
            | (s, v) :: rest -> go (k - 1) ((s, v) :: acc) rest
            | [] -> assert false
        in
        let popped, rest = go len [] !stack in
        (Array.of_list (List.map snd popped), popped, rest)
      in
      let pid =
        if Array.length candidates = 1 then candidates.(0)
        else begin
          (* a genuine tie: all candidates have equal rhs length.  The
             table constructor validates this invariant; re-check it
             here because tables can also arrive from a file, and a
             violation would silently corrupt the stack. *)
          Profile.counters.Profile.semantic_choices <-
            Profile.counters.Profile.semantic_choices + 1;
          let prods = Array.map (Grammar.production g) candidates in
          let len = Array.length prods.(0).rhs in
          Array.iter
            (fun (p : Grammar.production) ->
              if Array.length p.rhs <> len then
                Fmt.failwith
                  "matcher: semantic tie in state %d mixes rhs lengths \
                   (corrupt tables?): %a vs %a"
                  !state (Grammar.pp_production g) prods.(0)
                  (Grammar.pp_production g) p)
            prods;
          let args, _, _ = pop_args len in
          let idx = cb.choose prods [ args ] in
          if idx < 0 || idx >= Array.length candidates then
            Fmt.failwith
              "matcher: choose returned %d for %d candidates" idx
              (Array.length candidates);
          candidates.(idx)
        end
      in
      Profile.record_production pid;
      let p = Grammar.production g pid in
      let len = Array.length p.rhs in
      let args, popped, rest = pop_args len in
      let exposed =
        match popped with (s, _) :: _ -> s | [] -> assert false
      in
      record (Sreduce pid);
      let v = cb.on_reduce p args in
      let target = goto exposed p.Grammar.lhs in
      if target < 0 then reject i a;
      stack := (exposed, v) :: rest;
      state := target;
      loop i
    | Tables.Accept -> (
      record Saccept;
      match !stack with
      | [ (_, v) ] -> v
      | _ -> assert false)
    | Tables.Error -> reject i a
  in
  Profile.counters.Profile.matcher_runs <-
    Profile.counters.Profile.matcher_runs + 1;
  let value = loop 0 in
  { value; trace = List.rev !steps }

type engine = {
  eng_grammar : Grammar.t;
  eng_eof : int;
  eng_action : int -> int -> Tables.action;
  eng_goto : int -> int -> int;
  eng_expected : int -> int list;
}

let engine (tables : Tables.t) =
  {
    eng_grammar = Tables.grammar tables;
    eng_eof = Tables.eof tables;
    eng_action = (fun s a -> tables.Tables.action.(s).(a));
    eng_goto = (fun s n -> tables.Tables.goto_.(s).(n));
    eng_expected = Tables.expected tables;
  }

let packed_engine ~grammar (packed : Gg_tablegen.Packed.t) =
  let g : Grammar.t = grammar in
  {
    eng_grammar = g;
    eng_eof = Symtab.n_terms g.Grammar.symtab;
    eng_action = Gg_tablegen.Packed.action packed;
    eng_goto = Gg_tablegen.Packed.goto packed;
    eng_expected = Gg_tablegen.Packed.expected packed;
  }

let run_engine ?trace e cb tokens =
  run_with ?trace ~g:e.eng_grammar ~eof:e.eng_eof ~action:e.eng_action
    ~goto:e.eng_goto ~expected:e.eng_expected cb tokens

let run_tree_engine ?trace ?special_constants e cb tree =
  run_engine ?trace e cb (Termname.linearize ?special_constants tree)

let run ?trace (tables : Tables.t) cb tokens =
  run_engine ?trace (engine tables) cb tokens

let run_packed ?trace (packed : Gg_tablegen.Packed.t) ~grammar cb tokens =
  run_engine ?trace (packed_engine ~grammar packed) cb tokens

let run_tree ?trace ?special_constants tables cb tree =
  run ?trace tables cb (Termname.linearize ?special_constants tree)

let pp_step g ppf = function
  | Sshift name -> Fmt.pf ppf "shift  %s" name
  | Sreduce pid ->
    Fmt.pf ppf "reduce %a" (Grammar.pp_production g) (Grammar.production g pid)
  | Saccept -> Fmt.string ppf "accept"

let pp_trace g ppf steps =
  Fmt.(list ~sep:(any "@\n") (pp_step g)) ppf steps

let pp_error ppf e =
  Fmt.pf ppf
    "syntactic block at token %d (%s) in state %d; expected one of: %a" e.at
    e.token e.state
    Fmt.(list ~sep:comma string)
    e.expected
