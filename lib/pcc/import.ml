(* Short aliases for modules used throughout this library. *)
module Dtype = Gg_ir.Dtype
module Op = Gg_ir.Op
module Tree = Gg_ir.Tree
module Label = Gg_ir.Label
module Regconv = Gg_ir.Regconv
module Mode = Gg_ir.Mode
module Insn = Gg_ir.Insn
module Transform = Gg_transform.Transform
module Phase1a = Gg_transform.Phase1a
module Phase1c = Gg_transform.Phase1c
module Context = Gg_transform.Context
module Frame = Gg_codegen.Frame
