open Import

type compiled_func = {
  cf_name : string;
  cf_insns : Insn.t list;
  cf_frame_size : int;
}

type output = {
  assembly : string;
  funcs : compiled_func list;
  program : Tree.program;
}

(* -- generator state ------------------------------------------------------- *)

type state = {
  mutable out_rev : Insn.t list;
  mutable free : int list;
  frame : Frame.t;
}

type operand = { mode : Mode.t; owned : int list }

let emit st i = st.out_rev <- i :: st.out_rev

let sfx = Dtype.suffix

(* When no register (or adjacent pair, for doubles) is free, results go
   to a frame temporary instead — the historical PCC stored into
   temporaries under pressure.  Memory results are legal operands for
   every instruction this backend emits except addresses, and addresses
   are always Long (single registers). *)
let alloc st ty =
  let needs_pair = Dtype.size ty = 8 in
  let memory_fallback () =
    { mode = Frame.alloc_virtual st.frame ty; owned = [] }
  in
  if needs_pair then begin
    let rec find = function
      | r :: _ when List.mem (r + 1) st.free && List.mem (r + 1) Regconv.allocatable ->
        Some r
      | _ :: rest -> find rest
      | [] -> None
    in
    match find (List.sort Int.compare st.free) with
    | Some r ->
      st.free <- List.filter (fun x -> x <> r && x <> r + 1) st.free;
      { mode = Mode.Reg r; owned = [ r; r + 1 ] }
    | None -> memory_fallback ()
  end
  else
    match st.free with
    | r :: rest ->
      st.free <- rest;
      { mode = Mode.Reg r; owned = [ r ] }
    | [] -> memory_fallback ()

let release st (o : operand) =
  List.iter
    (fun r -> if not (List.mem r st.free) then st.free <- r :: st.free)
    o.owned

let imm0 (o : operand) = Mode.immediate o.mode = Some 0L
let imm1 (o : operand) = Mode.immediate o.mode = Some 1L

(* evaluate the register-hungrier subtree first, like PCC's pass-two
   ordering; returns operands in (left, right) order regardless *)
let ordered f a b =
  if Phase1c.register_need b > Phase1c.register_need a then begin
    let ob = f b in
    let oa = f a in
    (oa, ob)
  end
  else begin
    let oa = f a in
    let ob = f b in
    (oa, ob)
  end

let vax3 op ty = Fmt.str "%s%s3" op (sfx ty)

let direct_binop (op : Op.binop) ty =
  match (op, Dtype.is_float ty) with
  | Op.Plus, _ -> Some "add"
  | Op.Minus, _ -> Some "sub"
  | Op.Mul, _ -> Some "mul"
  | Op.Div, _ -> Some "div"
  | Op.Or, false -> Some "bis"
  | Op.Xor, false -> Some "xor"
  | _ -> None

(* VAX operand order: sub3/div3 take (subtrahend, minuend, dif) *)
let emit3 st op ty (a : Mode.t) (b : Mode.t) (dst : Mode.t) =
  match op with
  | "sub" | "div" -> emit st (Insn.insn (vax3 op ty) [ b; a; dst ])
  | _ -> emit st (Insn.insn (vax3 op ty) [ a; b; dst ])

let jcc rel sg ty =
  if Dtype.is_float ty then "j" ^ Op.relop_vax rel
  else
    match sg with
    | Dtype.Signed -> "j" ^ Op.relop_vax rel
    | Dtype.Unsigned -> "j" ^ Op.relop_vax_unsigned rel

(* -- expression generation -------------------------------------------------- *)

let rec gen_operand st (t : Tree.t) : operand =
  match t with
  | Tree.Const (_, n) -> { mode = Mode.Imm n; owned = [] }
  | Tree.Fconst (_, f) -> { mode = Mode.Fimm f; owned = [] }
  | Tree.Name (_, s) -> { mode = Mode.mem_sym s; owned = [] }
  | Tree.Temp (ty, i) -> { mode = Frame.temp_mode st.frame i ty; owned = [] }
  | Tree.Dreg (_, r) -> { mode = Mode.Reg r; owned = [] }
  | Tree.Autoinc (_, r) -> { mode = Mode.autoinc r; owned = [] }
  | Tree.Autodec (_, r) -> { mode = Mode.autodec r; owned = [] }
  | Tree.Indir (_, addr) -> gen_address st addr
  | _ -> gen_into_reg st t

(* the hand-coded addressing cases: d(rn), (rn), symbols, temporaries *)
and gen_address st (addr : Tree.t) : operand =
  match addr with
  | Tree.Addr (Tree.Name (_, s)) -> { mode = Mode.mem_sym s; owned = [] }
  | Tree.Addr (Tree.Temp (ty, i)) ->
    { mode = Frame.temp_mode st.frame i ty; owned = [] }
  | Tree.Binop (Op.Plus, _, Tree.Const (_, d), Tree.Dreg (_, r)) ->
    { mode = Mode.mem_disp d r; owned = [] }
  | Tree.Binop (Op.Plus, _, Tree.Const (_, d), rest) ->
    let base = force_register st (gen_into_reg st rest) in
    (match base.mode with
    | Mode.Reg r -> { mode = Mode.mem_disp d r; owned = base.owned }
    | _ -> assert false)
  | e ->
    let base = force_register st (gen_into_reg st e) in
    (match base.mode with
    | Mode.Reg r -> { mode = Mode.mem_deferred r; owned = base.owned }
    | _ -> assert false)

(* an address base must really be a register; reload a memory-temp
   result if the allocator fell back under pressure *)
and force_register st (o : operand) : operand =
  match o.mode with
  | Mode.Reg _ -> o
  | _ -> (
    release st o;
    match st.free with
    | r :: rest ->
      st.free <- rest;
      emit st (Insn.insn "movl" [ o.mode; Mode.Reg r ]);
      { mode = Mode.Reg r; owned = [ r ] }
    | [] -> failwith "pcc: no register available for an address base")

and gen_into_reg st (t : Tree.t) : operand =
  match t with
  | Tree.Dreg (_, r) -> { mode = Mode.Reg r; owned = [] }
  | Tree.Binop (op, ty, a, b) -> gen_binop st op ty a b
  | Tree.Unop (op, ty, e) ->
    let src = gen_operand st e in
    release st src;
    let dst = alloc st ty in
    let m = match op with Op.Neg -> "mneg" | Op.Com -> "mcom" in
    emit st (Insn.insn (m ^ sfx ty) [ src.mode; dst.mode ]);
    dst
  | Tree.Conv (to_, from, e) ->
    let src = gen_operand st e in
    release st src;
    let dst = alloc st to_ in
    emit st (Insn.insn ("cvt" ^ sfx from ^ sfx to_) [ src.mode; dst.mode ]);
    dst
  | Tree.Addr (Tree.Name (ty, s)) ->
    let dst = alloc st Dtype.Long in
    emit st (Insn.insn ("mova" ^ sfx ty) [ Mode.mem_sym s; dst.mode ]);
    dst
  | Tree.Addr (Tree.Temp (ty, i)) ->
    let dst = alloc st Dtype.Long in
    emit st
      (Insn.insn ("mova" ^ sfx ty) [ Frame.temp_mode st.frame i ty; dst.mode ]);
    dst
  | Tree.Addr (Tree.Indir (_, e)) -> gen_into_reg st e
  | other ->
    let src = gen_operand st other in
    (match src.mode with
    | Mode.Reg _ -> src
    | _ ->
      release st src;
      let ty = Tree.dtype other in
      let dst = alloc st ty in
      emit st (Insn.insn ("mov" ^ sfx ty) [ src.mode; dst.mode ]);
      dst)

and gen_binop st (op : Op.binop) ty a b : operand =
  (* reverse operators never reach this backend (it orders operands
     itself), but handle them for robustness *)
  let op = Op.unreverse op in
  match direct_binop op ty with
  | Some name ->
    let oa, ob = ordered (gen_operand st) a b in
    release st oa;
    release st ob;
    let dst = alloc st ty in
    emit3 st name ty oa.mode ob.mode dst.mode;
    dst
  | None -> gen_pseudo st op ty a b

and gen_pseudo st (op : Op.binop) ty a b : operand =
  let s = sfx ty in
  match op with
  | Op.Mod ->
    let oa, ob = ordered (gen_operand st) a b in
    let q = alloc st ty in
    emit st (Insn.insn ("div" ^ s ^ "3") [ ob.mode; oa.mode; q.mode ]);
    emit st (Insn.insn ("mul" ^ s ^ "2") [ ob.mode; q.mode ]);
    release st ob;
    release st q;
    release st oa;
    let dst = alloc st ty in
    emit st (Insn.insn ("sub" ^ s ^ "3") [ q.mode; oa.mode; dst.mode ]);
    dst
  | Op.And ->
    let oa, ob = ordered (gen_operand st) a b in
    (match Mode.immediate ob.mode with
    | Some k ->
      release st oa;
      release st ob;
      let dst = alloc st ty in
      emit st
        (Insn.insn ("bic" ^ s ^ "3")
           [ Mode.Imm (Tree.wrap ty (Int64.lognot k)); oa.mode; dst.mode ]);
      dst
    | None ->
      let m = alloc st ty in
      emit st (Insn.insn ("mcom" ^ s) [ ob.mode; m.mode ]);
      release st ob;
      release st m;
      release st oa;
      let dst = alloc st ty in
      emit st (Insn.insn ("bic" ^ s ^ "3") [ m.mode; oa.mode; dst.mode ]);
      dst)
  | Op.Lsh ->
    let oa, ob = ordered (gen_operand st) a b in
    release st oa;
    release st ob;
    let dst = alloc st Dtype.Long in
    emit st (Insn.insn "ashl" [ ob.mode; oa.mode; dst.mode ]);
    dst
  | Op.Rsh -> (
    let oa, ob = ordered (gen_operand st) a b in
    match Mode.immediate ob.mode with
    | Some k ->
      release st oa;
      release st ob;
      let dst = alloc st Dtype.Long in
      emit st (Insn.insn "ashl" [ Mode.Imm (Int64.neg k); oa.mode; dst.mode ]);
      dst
    | None ->
      let neg = alloc st Dtype.Long in
      emit st (Insn.insn "mnegl" [ ob.mode; neg.mode ]);
      release st ob;
      release st neg;
      release st oa;
      let dst = alloc st Dtype.Long in
      emit st (Insn.insn "ashl" [ neg.mode; oa.mode; dst.mode ]);
      dst)
  | Op.Udiv | Op.Umod ->
    let oa, ob = ordered (gen_operand st) a b in
    emit st (Insn.insn "pushl" [ ob.mode ]);
    emit st (Insn.insn "pushl" [ oa.mode ]);
    emit st
      (Insn.Call ((if op = Op.Udiv then "__udivl" else "__umodl"), 2));
    release st oa;
    release st ob;
    let dst = alloc st ty in
    emit st (Insn.insn "movl" [ Mode.Reg Regconv.r0; dst.mode ]);
    dst
  | _ ->
    Fmt.failwith "pcc: operator %s not implemented" (Op.binop_name op)

(* -- statements -------------------------------------------------------------- *)

let lval_operand st (dst : Tree.t) : operand =
  match dst with
  | Tree.Name (_, s) -> { mode = Mode.mem_sym s; owned = [] }
  | Tree.Temp (ty, i) -> { mode = Frame.temp_mode st.frame i ty; owned = [] }
  | Tree.Dreg (_, r) -> { mode = Mode.Reg r; owned = [] }
  | Tree.Indir (_, addr) -> gen_address st addr
  | Tree.Autoinc (_, r) -> { mode = Mode.autoinc r; owned = [] }
  | Tree.Autodec (_, r) -> { mode = Mode.autodec r; owned = [] }
  | _ -> failwith "pcc: unsupported assignment destination"

let gen_assign st ty (dst : Tree.t) (src : Tree.t) =
  let d = lval_operand st dst in
  (match src with
  | Tree.Binop (op, bty, a, b) when direct_binop (Op.unreverse op) bty <> None
    ->
    let op = Op.unreverse op in
    let name = Option.get (direct_binop op bty) in
    let oa, ob = ordered (gen_operand st) a b in
    (* the PCC specials: a = a + 1 / a = a - 1 / a = 0 *)
    if
      op = Op.Plus && Dtype.is_integer bty
      && ((imm1 oa && Mode.equal ob.mode d.mode)
         || (imm1 ob && Mode.equal oa.mode d.mode))
    then emit st (Insn.insn ("inc" ^ sfx bty) [ d.mode ])
    else if
      op = Op.Minus && Dtype.is_integer bty && imm1 ob
      && Mode.equal oa.mode d.mode
    then emit st (Insn.insn ("dec" ^ sfx bty) [ d.mode ])
    else emit3 st name bty oa.mode ob.mode d.mode;
    release st oa;
    release st ob
  | Tree.Conv (to_, from, e) ->
    let src = gen_operand st e in
    emit st (Insn.insn ("cvt" ^ sfx from ^ sfx to_) [ src.mode; d.mode ]);
    release st src
  | _ ->
    let s = gen_operand st src in
    if imm0 s && Dtype.is_integer ty then
      emit st (Insn.insn ("clr" ^ sfx ty) [ d.mode ])
    else emit st (Insn.insn ("mov" ^ sfx ty) [ s.mode; d.mode ]);
    release st s);
  release st d

let gen_stmt st (s : Tree.stmt) =
  match s with
  | Tree.Slabel l -> emit st (Insn.Lab l)
  | Tree.Sjump l -> emit st (Insn.Branch ("jbr", l))
  | Tree.Sret -> emit st Insn.Ret
  | Tree.Scall (f, n, _) -> emit st (Insn.Call (f, n))
  | Tree.Scomment c -> emit st (Insn.Comment c)
  | Tree.Sline _ -> ()
  | Tree.Stree (Tree.Assign (ty, dst, src)) -> gen_assign st ty dst src
  | Tree.Stree (Tree.Rassign (ty, src, dst)) -> gen_assign st ty dst src
  | Tree.Stree (Tree.Cbranch (rel, sg, ty, a, b, l)) ->
    let oa, ob = ordered (gen_operand st) a b in
    if imm0 ob && Dtype.is_integer ty then
      emit st (Insn.insn ("tst" ^ sfx ty) [ oa.mode ])
    else emit st (Insn.insn ("cmp" ^ sfx ty) [ oa.mode; ob.mode ]);
    release st oa;
    release st ob;
    emit st (Insn.Branch (jcc rel sg ty, l))
  | Tree.Stree (Tree.Arg (ty, e)) -> (
    let o = gen_operand st e in
    match ty with
    | Dtype.Dbl ->
      emit st (Insn.insn "movd" [ o.mode; Mode.autodec Regconv.sp ]);
      release st o
    | _ ->
      emit st (Insn.insn "pushl" [ o.mode ]);
      release st o)
  | Tree.Stree t ->
    let o = gen_operand st t in
    release st o

(* -- functions and programs --------------------------------------------------- *)

let transform_options =
  (* Phase 1a is PCC pass one's job too; the spill guard substitutes for
     PCC's pass-two store insertion.  No reverse operators: this backend
     orders operands while generating. *)
  { Transform.reverse_ops = false; reorder = true; spill_guard = true }

(* register variables occupy allocatable registers: withhold them *)
let reserved_registers (f : Tree.func) =
  List.fold_left
    (fun acc s ->
      match s with
      | Tree.Stree t ->
        Tree.fold
          (fun acc node ->
            match node with
            | Tree.Dreg (_, r) | Tree.Autoinc (_, r) | Tree.Autodec (_, r)
              when List.mem r Regconv.allocatable && not (List.mem r acc) ->
              r :: acc
            | _ -> acc)
          acc t
      | _ -> acc)
    [] f.Tree.body

let compile_func ?(peephole = false) (f : Tree.func) =
  let reserved = reserved_registers f in
  let pool_size =
    List.length Regconv.allocatable - List.length reserved
  in
  (* this backend cannot spill dynamically and doubles need register
     pairs, so its budget is tighter than the table-driven backend's *)
  let tr =
    Gg_profile.Trace.phase "phase1.transform" (fun () ->
        Transform.run ~options:transform_options
          ~spill_limit:(max 2 (pool_size - 3))
          f)
  in
  let frame =
    Frame.create ~locals_size:f.Tree.locals_size ~temps:tr.Transform.temps
  in
  let pool =
    List.filter (fun r -> not (List.mem r reserved)) Regconv.allocatable
  in
  let st = { out_rev = []; free = pool; frame } in
  Gg_profile.Trace.phase "pcc.select" (fun () ->
      List.iter (gen_stmt st) tr.Transform.func.Tree.body);
  if List.length st.free <> List.length pool then
    failwith "pcc: register leak";
  let insns = List.rev st.out_rev in
  let insns =
    if peephole then
      Gg_profile.Trace.phase "peephole" (fun () ->
          fst (Gg_codegen.Peephole.optimize insns))
    else insns
  in
  {
    cf_name = f.Tree.fname;
    cf_insns = insns;
    cf_frame_size = Frame.size frame;
  }

let render_func buf (cf : compiled_func) =
  Buffer.add_string buf (Fmt.str "\t.globl\t%s\n" cf.cf_name);
  Buffer.add_string buf (cf.cf_name ^ ":\n");
  if cf.cf_frame_size > 0 then
    Buffer.add_string buf (Fmt.str "\tsubl2\t$%d,sp\n" cf.cf_frame_size);
  List.iter (fun i -> Buffer.add_string buf (Insn.assembly i ^ "\n")) cf.cf_insns;
  Buffer.add_string buf "\tret\n"

let compile_program ?peephole (p : Tree.program) =
  let funcs = List.map (compile_func ?peephole) p.Tree.funcs in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, _, size) ->
      Buffer.add_string buf (Fmt.str "\t.comm\t%s,%d\n" name size))
    p.Tree.globals;
  List.iter (render_func buf) funcs;
  { assembly = Buffer.contents buf; funcs; program = p }

let compile_tree tree =
  let f =
    {
      Tree.fname = "snippet";
      formals = [];
      ret_type = Dtype.Long;
      locals_size = 0;
      body = [ Tree.Stree tree ];
    }
  in
  (compile_func f).cf_insns

let total_cycles out =
  List.fold_left
    (fun acc cf -> acc + Insn.total_cycles cf.cf_insns + 2)
    0 out.funcs

let total_lines out =
  List.fold_left
    (fun acc cf -> acc + Insn.count_lines cf.cf_insns + 3)
    0 out.funcs
  + List.length out.program.Tree.globals
