open Import

(** The cross-backend differential oracle.

    Every program is executed several ways — the reference interpreter
    on the IR, the table-driven backends' output under their target
    simulators (VAX and/or RISC, dense and/or packed tables), and the
    PCC-style baseline under the VAX simulator — and all observables
    (return value, final scalar globals, print output) must agree.
    This is the paper's correctness claim (section 8) as a standing
    instrument rather than a one-off validation run, extended across
    targets: a divergence between two backends is a bug in one of the
    machine descriptions. *)

(** Why a backend failed the oracle. *)
type reason =
  | Diverged of string
      (** observable state differs; the payload names the first
          differing observable (return value, a global by name, or the
          print output) *)
  | Crash of string
      (** the backend, the assembler parser or the simulator raised *)

type failure = { backend : string; reason : reason }

(** The reference interpreter itself failed: the program (not a
    backend) is at fault — a generator or shrinker bug. *)
exception Invalid of string

(** [compare_observations ~reference actual] — a single robust
    comparison of all observables that reports {e which} one differs
    (globals are matched by name, so a length mismatch names the first
    missing global instead of failing opaquely). *)
val compare_observations :
  reference:Interp.outcome -> Simout.t -> (unit, string) result

(** Named table engines for the gg backend, e.g.
    [("gg-packed", packed_engine)].  Running both the dense and the
    packed engines makes the oracle differential over the table
    representation as well as over the backends. *)
type engines = (string * Driver.tables) list

(** The default VAX grammar the engines below are built for. *)
val default_grammar : unit -> Grammar.t

(** Default engine set: the packed production tables only. *)
val default_engines : unit -> engines

(** Build [("gg-dense", _)] / [("gg-packed", _)] engines in-process for
    the default grammar. *)
val dense_engine : unit -> string * Driver.tables

val packed_engine : unit -> string * Driver.tables

(** Engines for any target, named [<target>-dense] / [<target>-packed]
    so a failure pins down both the machine description and the table
    representation. *)
val dense_engine_for : Backend.target -> string * Driver.tables

val packed_engine_for : Backend.target -> string * Driver.tables

(** [check ~engines prog] runs the interpreter once, then each gg
    engine and the PCC baseline, comparing observables.  Returns the
    reference outcome, or the first failure.  Raises {!Invalid} if the
    interpreter itself rejects the program.  [jobs] is forwarded to
    {!Driver.compile_program} — a fuzz campaign under [--jobs N] also
    exercises the parallel batch path. *)
val check :
  ?options:Driver.options ->
  ?pcc:bool ->
  ?jobs:int ->
  ?max_steps:int ->
  engines:engines ->
  Tree.program ->
  (Interp.outcome, failure) result

val pp_failure : failure Fmt.t
