open Import

(** The cross-backend differential oracle.

    Every program is executed several ways — the reference interpreter
    on the IR, the table-driven backends' output under their target
    simulators (VAX and/or RISC, dense and/or packed tables), and the
    PCC-style baseline under the VAX simulator — and all observables
    (return value, final scalar globals, print output) must agree.
    This is the paper's correctness claim (section 8) as a standing
    instrument rather than a one-off validation run, extended across
    targets: a divergence between two backends is a bug in one of the
    machine descriptions. *)

(** Why a backend failed the oracle. *)
type reason =
  | Diverged of string
      (** observable state differs; the payload names the first
          differing observable (return value, a global by name, or the
          print output) *)
  | Crash of string
      (** the backend, the assembler parser or the simulator raised *)

type failure = { backend : string; reason : reason }

(** The reference interpreter itself failed: the program (not a
    backend) is at fault — a generator or shrinker bug. *)
exception Invalid of string

(** [compare_observations ~reference actual] — a single robust
    comparison of all observables that reports {e which} one differs
    (globals are matched by name, so a length mismatch names the first
    missing global instead of failing opaquely). *)
val compare_observations :
  reference:Interp.outcome -> Simout.t -> (unit, string) result

(** A named table engine for the gg backend, with an optional
    per-engine compile-options override.  Running both the dense and
    the packed engines makes the oracle differential over the table
    representation; mixing stack- and color-allocating engines makes it
    differential over the register allocator too. *)
type engine = {
  e_name : string;
  e_tables : Driver.tables;
  e_options : Driver.options option;
      (** when set, replaces {!check}'s [~options] for this engine *)
}

type engines = engine list

val engine : ?options:Driver.options -> string -> Driver.tables -> engine

(** The default VAX grammar the engines below are built for. *)
val default_grammar : unit -> Grammar.t

(** Default engine set: the packed production tables only. *)
val default_engines : unit -> engines

(** Build [gg-dense] / [gg-packed] engines in-process for the default
    grammar. *)
val dense_engine : unit -> engine

val packed_engine : unit -> engine

(** Engines for any target, named [<target>-dense] / [<target>-packed]
    so a failure pins down both the machine description and the table
    representation. *)
val dense_engine_for : Backend.target -> engine

val packed_engine_for : Backend.target -> engine

(** The packed tables allocating with [--regalloc color], named
    [<target>-color]. *)
val color_engine_for : Backend.target -> engine

(** [check ~engines prog] runs the interpreter once, then each gg
    engine and the PCC baseline, comparing observables.  Returns the
    reference outcome, or the first failure.  Raises {!Invalid} if the
    interpreter itself rejects the program.  [jobs] is forwarded to
    {!Driver.compile_program} — a fuzz campaign under [--jobs N] also
    exercises the parallel batch path. *)
val check :
  ?options:Driver.options ->
  ?pcc:bool ->
  ?jobs:int ->
  ?max_steps:int ->
  engines:engines ->
  Tree.program ->
  (Interp.outcome, failure) result

val pp_failure : failure Fmt.t
