open Import

type stats = {
  checks : int;
  accepted : int;
  stmts_before : int;
  stmts_after : int;
}

let program_stmts (p : Tree.program) =
  List.fold_left (fun acc (f : Tree.func) -> acc + List.length f.Tree.body) 0
    p.Tree.funcs

let valid_and pred prog =
  match Interp.run ~max_steps:10_000_000 prog ~entry:"main" [] with
  | (_ : Interp.outcome) -> pred prog
  | exception Interp.Runtime_error _ -> false

(* -- tree rewrites ------------------------------------------------------ *)

let leaf_of ty =
  if Dtype.is_float ty then Tree.Fconst (ty, 1.0) else Tree.const ty 1L

let is_leaf (t : Tree.t) =
  match t with
  | Tree.Const _ | Tree.Fconst _ | Tree.Name _ | Tree.Temp _ | Tree.Dreg _ ->
    true
  | _ -> false

(* rebuild a node with new children, in {!Tree.children} order *)
let with_children (t : Tree.t) (cs : Tree.t list) : Tree.t =
  let open Tree in
  match (t, cs) with
  | (Const _ | Fconst _ | Name _ | Temp _ | Dreg _ | Autoinc _ | Autodec _), [] ->
    t
  | Indir (ty, _), [ e ] -> Indir (ty, e)
  | Addr _, [ e ] -> Addr e
  | Unop (op, ty, _), [ e ] -> Unop (op, ty, e)
  | Conv (to_, from, _), [ e ] -> Conv (to_, from, e)
  | Arg (ty, _), [ e ] -> Arg (ty, e)
  | Lnot _, [ e ] -> Lnot e
  | Binop (op, ty, _, _), [ a; b ] -> Binop (op, ty, a, b)
  | Assign (ty, _, _), [ a; b ] -> Assign (ty, a, b)
  | Rassign (ty, _, _), [ a; b ] -> Rassign (ty, a, b)
  | Cbranch (r, s, ty, _, _, l), [ a; b ] -> Cbranch (r, s, ty, a, b, l)
  | Land (_, _), [ a; b ] -> Land (a, b)
  | Lor (_, _), [ a; b ] -> Lor (a, b)
  | Relval (r, s, ty, _, _), [ a; b ] -> Relval (r, s, ty, a, b)
  | Select (ty, _, _, _), [ c; a; b ] -> Select (ty, c, a, b)
  | Call (ty, f, _), args -> Call (ty, f, args)
  | _ -> invalid_arg "Shrink.with_children: arity mismatch"

(* all trees reachable by one simplifying rewrite of one node: hoist a
   same-typed child over its parent, or collapse a non-leaf node to a
   constant.  Ordered most-aggressive first so greedy descent takes big
   steps early. *)
let rec value_rewrites (t : Tree.t) : Tree.t list =
  if is_leaf t then []
  else
    let ty = Tree.dtype t in
    let hoists =
      List.filter (fun c -> Dtype.equal (Tree.dtype c) ty) (Tree.children t)
    in
    let deeper =
      let cs = Tree.children t in
      List.concat
        (List.mapi
           (fun i ci ->
             List.map
               (fun ci' ->
                 with_children t (List.mapi (fun j cj -> if i = j then ci' else cj) cs))
               (value_rewrites ci))
           cs)
    in
    (leaf_of ty :: hoists) @ deeper

(* rewrites of a whole statement tree; destinations of assignments are
   kept intact (a constant destination is never valid) *)
let stmt_tree_rewrites (t : Tree.t) : Tree.t list =
  match t with
  | Tree.Assign (ty, dst, src) ->
    List.map (fun src' -> Tree.Assign (ty, dst, src')) (value_rewrites src)
  | Tree.Rassign (ty, src, dst) ->
    List.map (fun src' -> Tree.Rassign (ty, src', dst)) (value_rewrites src)
  | Tree.Cbranch (r, s, ty, a, b, l) ->
    List.map (fun a' -> Tree.Cbranch (r, s, ty, a', b, l)) (value_rewrites a)
    @ List.map (fun b' -> Tree.Cbranch (r, s, ty, a, b', l)) (value_rewrites b)
  | t -> value_rewrites t

(* -- candidate enumeration ---------------------------------------------- *)

let set_func (p : Tree.program) i (f : Tree.func) =
  { p with Tree.funcs = List.mapi (fun j g -> if i = j then f else g) p.Tree.funcs }

let set_body (p : Tree.program) i body =
  let f = List.nth p.Tree.funcs i in
  set_func p i { f with Tree.body }

(* drop [len] statements at [start] *)
let drop_range body start len =
  List.filteri (fun i _ -> i < start || i >= start + len) body

(* statement-range removals for one function, larger chunks first *)
let removal_candidates (p : Tree.program) fi : Tree.program Seq.t =
  let body = (List.nth p.Tree.funcs fi).Tree.body in
  let n = List.length body in
  let rec chunks len () =
    if len < 1 then Seq.Nil
    else
      let starts = Seq.init (max 0 (n - len + 1)) (fun s -> s) in
      Seq.Cons
        ( Seq.map (fun s -> set_body p fi (drop_range body s len)) starts,
          chunks (len / 2) )
  in
  Seq.concat (chunks (max 1 (n / 2)))

let func_removal_candidates (p : Tree.program) : Tree.program Seq.t =
  Seq.filter_map
    (fun i ->
      if (List.nth p.Tree.funcs i).Tree.fname = "main" then None
      else
        Some { p with Tree.funcs = List.filteri (fun j _ -> j <> i) p.Tree.funcs })
    (Seq.init (List.length p.Tree.funcs) (fun i -> i))

let tree_candidates (p : Tree.program) fi : Tree.program Seq.t =
  let body = (List.nth p.Tree.funcs fi).Tree.body in
  Seq.concat
    (Seq.mapi
       (fun si s ->
         match s with
         | Tree.Stree t ->
           Seq.map
             (fun t' ->
               set_body p fi
                 (List.mapi (fun j s' -> if j = si then Tree.Stree t' else s') body))
             (List.to_seq (stmt_tree_rewrites t))
         | _ -> Seq.empty)
       (List.to_seq body))

let all_candidates (p : Tree.program) : Tree.program Seq.t =
  let nf = List.length p.Tree.funcs in
  Seq.append (func_removal_candidates p)
    (Seq.append
       (Seq.concat (Seq.init nf (fun fi -> removal_candidates p fi)))
       (Seq.concat (Seq.init nf (fun fi -> tree_candidates p fi))))

(* -- the greedy loop ---------------------------------------------------- *)

let run ?(max_checks = 2000) ~check (prog : Tree.program) =
  let checks = ref 0 in
  let accepted = ref 0 in
  let stmts_before = program_stmts prog in
  let try_one cand =
    if !checks >= max_checks then None
    else begin
      incr checks;
      if check cand then Some cand else None
    end
  in
  (* one sweep: the first accepted candidate restarts the descent from
     the smaller program *)
  let rec descend cur =
    if !checks >= max_checks then cur
    else
      match Seq.find_map try_one (all_candidates cur) with
      | Some smaller ->
        incr accepted;
        descend smaller
      | None -> cur
  in
  let final = descend prog in
  ( final,
    {
      checks = !checks;
      accepted = !accepted;
      stmts_before;
      stmts_after = program_stmts final;
    } )
