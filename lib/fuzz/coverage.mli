open Import

(** Grammar-production coverage accounting.

    Which productions of the machine grammar actually fire during
    matching — per run and cumulatively — after Samuelsson's
    example-based measurement of which table entries a corpus
    exercises.  Counting happens in the matcher via
    {!Gg_profile.Profile.record_production}; this module turns the raw
    id counts into reports against a grammar. *)

(** [with_fired f] runs [f] with coverage recording enabled and returns
    its result plus the ids of the productions that fired {e during}
    [f] (cumulative counts are not reset). *)
val with_fired : (unit -> 'a) -> 'a * int list

(** Ids of every production fired since the last coverage reset. *)
val fired_ids : unit -> int list

type report = {
  total : int;
  fired : int list;  (** production ids, sorted *)
  never_fired : int list;
}

val report : Grammar.t -> fired:int list -> report

(** Production ids fired by the fixed mini-C corpus plus the
    straight-line typed-tree corpus — the pre-fuzzer baseline the
    campaign's coverage is compared against. *)
val baseline : Driver.tables -> int list

(** Render a report; [baseline] (if given) adds the fired-vs-baseline
    comparison line.  [verbose] lists every never-fired production. *)
val pp_report :
  ?baseline:int list -> ?verbose:bool -> Grammar.t -> report Fmt.t
