open Import

(** Greedy structural shrinking of diverging programs.

    Given a program and a predicate (normally "the oracle still
    fails"), the shrinker repeatedly tries structure-removing edits —
    dropping statement ranges, dropping whole functions, hoisting a
    subtree's same-typed child over the subtree, replacing subtrees by
    constant leaves — keeping an edit only when the predicate still
    holds, until no edit applies or the check budget is exhausted.

    Edits that break the program (a deleted label still jumped to, a
    call to a deleted function) make the reference interpreter reject
    it; the predicate is expected to return [false] for such candidates
    (wrap it in {!valid_and}), so validity needs no special casing. *)

type stats = {
  checks : int;  (** predicate evaluations *)
  accepted : int;  (** edits kept *)
  stmts_before : int;
  stmts_after : int;
}

(** Total statement count over all functions (the reproducer-size
    metric). *)
val program_stmts : Tree.program -> int

(** [valid_and p] — [p prog], but [false] when the reference
    interpreter rejects [prog]. *)
val valid_and : (Tree.program -> bool) -> Tree.program -> bool

(** [run ~check prog] — [check] must hold for [prog] itself; returns
    the smallest program found (by greedy descent) still satisfying
    [check].  [max_checks] bounds oracle invocations (default 2000). *)
val run :
  ?max_checks:int ->
  check:(Tree.program -> bool) ->
  Tree.program ->
  Tree.program * stats
