open Import

type engine_sel = Dense | Packed | Both
type regalloc_sel = Rstack | Rcolor | Rboth

type config = {
  seed_lo : int;
  seed_hi : int;
  gen : Treegen.config;
  engine : engine_sel;
  regalloc : regalloc_sel;
  targets : Backend.target list;
  straight_line : bool;
  corpus_dir : string;
  max_shrink_checks : int;
  jobs : int;
  log : string Fmt.t option;
}

let default_config =
  {
    seed_lo = 0;
    seed_hi = 100;
    gen = Treegen.default_config;
    engine = Both;
    regalloc = Rstack;
    targets = [ Backend.Vax ];
    straight_line = false;
    corpus_dir = "fuzz-corpus";
    max_shrink_checks = 2000;
    jobs = 1;
    log = None;
  }

type divergence = {
  seed : int;
  failure : Oracle.failure;
  shrunk : Tree.program;
  shrunk_stmts : int;
  dump : string option;
}

type result = {
  programs : int;
  divergences : divergence list;
  fired : int list;
  seconds : float;
}

let engines_of ?(targets = [ Backend.Vax ]) ?(regalloc = Rstack) sel =
  List.concat_map
    (fun target ->
      let stack =
        match sel with
        | Dense -> [ Oracle.dense_engine_for target ]
        | Packed -> [ Oracle.packed_engine_for target ]
        | Both ->
          [ Oracle.dense_engine_for target; Oracle.packed_engine_for target ]
      in
      (* the color engine always runs the packed tables: the allocator
         is downstream of matching, so the table representation is
         covered by the stack engines *)
      match regalloc with
      | Rstack -> stack
      | Rcolor -> [ Oracle.color_engine_for target ]
      | Rboth -> stack @ [ Oracle.color_engine_for target ])
    targets

let program_of_seed cfg seed =
  if cfg.straight_line then Treegen.program ~seed ~stmts:cfg.gen.Treegen.stmts
  else Treegen.control_program ~seed cfg.gen

let log cfg fmt = Fmt.kstr (fun s -> Option.iter (fun l -> l Fmt.stderr s) cfg.log) fmt

(* the PCC baseline emits VAX assembly, so it only joins the oracle
   when the VAX is among the fuzzed targets *)
let pcc_of_targets targets = List.mem Backend.Vax targets

(* a shrink step must preserve *which* backend fails, not merely that
   something fails — otherwise a cross-backend campaign can shrink a
   RISC divergence into an unrelated (pre-existing) VAX one and the
   reproducer stops witnessing the bug it was filed for *)
let still_fails ~pcc ~backend engines prog =
  match Oracle.check ~pcc ~engines prog with
  | Ok _ -> false
  | Error f -> f.Oracle.backend = backend
  | exception Oracle.Invalid _ -> false

let handle_divergence cfg engines seed prog (failure : Oracle.failure) =
  log cfg "seed %d: %a; shrinking@." seed Oracle.pp_failure failure;
  let pcc = pcc_of_targets cfg.targets in
  let shrunk, stats =
    Shrink.run ~max_checks:cfg.max_shrink_checks
      ~check:
        (Shrink.valid_and
           (still_fails ~pcc ~backend:failure.Oracle.backend engines))
      prog
  in
  log cfg "seed %d: shrunk %d -> %d statements (%d oracle checks)@." seed
    stats.Shrink.stmts_before stats.Shrink.stmts_after stats.Shrink.checks;
  let dump =
    match cfg.corpus_dir with
    | "" -> None
    | dir ->
      let path = Dump.save ~dir ~name:(Fmt.str "seed-%d" seed) shrunk in
      log cfg "seed %d: reproducer saved to %s@." seed path;
      Some path
  in
  { seed; failure; shrunk; shrunk_stmts = stats.Shrink.stmts_after; dump }

let run cfg : result =
  let t0 = Unix.gettimeofday () in
  let engines =
    engines_of ~targets:cfg.targets ~regalloc:cfg.regalloc cfg.engine
  in
  let pcc = pcc_of_targets cfg.targets in
  let divergences = ref [] in
  let programs = ref 0 in
  let (), fired =
    Coverage.with_fired (fun () ->
        for seed = cfg.seed_lo to cfg.seed_hi do
          let prog = program_of_seed cfg seed in
          incr programs;
          (* shrinking re-checks tiny programs where domain-spawn
             overhead dominates, so only the main check runs parallel *)
          match Oracle.check ~pcc ~jobs:cfg.jobs ~engines prog with
          | Ok _ -> ()
          | Error failure ->
            divergences :=
              handle_divergence cfg engines seed prog failure :: !divergences
          | exception Oracle.Invalid m ->
            (* a generator bug: surface it like a divergence, unshrunk *)
            divergences :=
              {
                seed;
                failure =
                  {
                    Oracle.backend = "interp";
                    reason = Oracle.Crash (Fmt.str "generator produced invalid program: %s" m);
                  };
                shrunk = prog;
                shrunk_stmts = Shrink.program_stmts prog;
                dump = None;
              }
              :: !divergences
        done)
  in
  {
    programs = !programs;
    divergences = List.rev !divergences;
    fired;
    seconds = Unix.gettimeofday () -. t0;
  }

let replay ?(engine = Both) ?(regalloc = Rstack) ?(targets = [ Backend.Vax ])
    path =
  let prog = Dump.load_ir path in
  Oracle.check ~pcc:(pcc_of_targets targets)
    ~engines:(engines_of ~targets ~regalloc engine)
    prog
