open Import

type engine_sel = Dense | Packed | Both

type config = {
  seed_lo : int;
  seed_hi : int;
  gen : Treegen.config;
  engine : engine_sel;
  straight_line : bool;
  corpus_dir : string;
  max_shrink_checks : int;
  jobs : int;
  log : string Fmt.t option;
}

let default_config =
  {
    seed_lo = 0;
    seed_hi = 100;
    gen = Treegen.default_config;
    engine = Both;
    straight_line = false;
    corpus_dir = "fuzz-corpus";
    max_shrink_checks = 2000;
    jobs = 1;
    log = None;
  }

type divergence = {
  seed : int;
  failure : Oracle.failure;
  shrunk : Tree.program;
  shrunk_stmts : int;
  dump : string option;
}

type result = {
  programs : int;
  divergences : divergence list;
  fired : int list;
  seconds : float;
}

let engines_of = function
  | Dense -> [ Oracle.dense_engine () ]
  | Packed -> [ Oracle.packed_engine () ]
  | Both -> [ Oracle.dense_engine (); Oracle.packed_engine () ]

let program_of_seed cfg seed =
  if cfg.straight_line then Treegen.program ~seed ~stmts:cfg.gen.Treegen.stmts
  else Treegen.control_program ~seed cfg.gen

let log cfg fmt = Fmt.kstr (fun s -> Option.iter (fun l -> l Fmt.stderr s) cfg.log) fmt

let still_fails engines prog =
  match Oracle.check ~engines prog with
  | Ok _ -> false
  | Error _ -> true
  | exception Oracle.Invalid _ -> false

let handle_divergence cfg engines seed prog (failure : Oracle.failure) =
  log cfg "seed %d: %a; shrinking@." seed Oracle.pp_failure failure;
  let shrunk, stats =
    Shrink.run ~max_checks:cfg.max_shrink_checks
      ~check:(Shrink.valid_and (still_fails engines))
      prog
  in
  log cfg "seed %d: shrunk %d -> %d statements (%d oracle checks)@." seed
    stats.Shrink.stmts_before stats.Shrink.stmts_after stats.Shrink.checks;
  let dump =
    match cfg.corpus_dir with
    | "" -> None
    | dir ->
      let path = Dump.save ~dir ~name:(Fmt.str "seed-%d" seed) shrunk in
      log cfg "seed %d: reproducer saved to %s@." seed path;
      Some path
  in
  { seed; failure; shrunk; shrunk_stmts = stats.Shrink.stmts_after; dump }

let run cfg : result =
  let t0 = Unix.gettimeofday () in
  let engines = engines_of cfg.engine in
  let divergences = ref [] in
  let programs = ref 0 in
  let (), fired =
    Coverage.with_fired (fun () ->
        for seed = cfg.seed_lo to cfg.seed_hi do
          let prog = program_of_seed cfg seed in
          incr programs;
          (* shrinking re-checks tiny programs where domain-spawn
             overhead dominates, so only the main check runs parallel *)
          match Oracle.check ~jobs:cfg.jobs ~engines prog with
          | Ok _ -> ()
          | Error failure ->
            divergences :=
              handle_divergence cfg engines seed prog failure :: !divergences
          | exception Oracle.Invalid m ->
            (* a generator bug: surface it like a divergence, unshrunk *)
            divergences :=
              {
                seed;
                failure =
                  {
                    Oracle.backend = "interp";
                    reason = Oracle.Crash (Fmt.str "generator produced invalid program: %s" m);
                  };
                shrunk = prog;
                shrunk_stmts = Shrink.program_stmts prog;
                dump = None;
              }
              :: !divergences
        done)
  in
  {
    programs = !programs;
    divergences = List.rev !divergences;
    fired;
    seconds = Unix.gettimeofday () -. t0;
  }

let replay ?(engine = Both) path =
  let prog = Dump.load_ir path in
  Oracle.check ~engines:(engines_of engine) prog
