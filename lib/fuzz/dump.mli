open Import

(** Re-runnable persistence for divergence corpora.

    Every diverging program is saved twice: as a marshalled IR file
    ([.ir]) that [ggfuzz replay] executes directly, and as OCaml
    constructor text ([.ml]) that can be pasted into a regression test
    (or read by a human).  The marshalled form carries a format tag and
    version so stale files fail loudly. *)

(** OCaml source text that rebuilds the program with [Tree]
    constructors: a self-contained [let program : Tree.program = ...]. *)
val to_ocaml : Tree.program -> string

val save_ir : Tree.program -> string -> unit

(** Raises [Failure] on a file that is not a ggfuzz IR dump. *)
val load_ir : string -> Tree.program

(** [save ~dir ~name prog] writes [name.ir] and [name.ml] under [dir]
    (created if missing) and returns the [.ir] path. *)
val save : dir:string -> name:string -> Tree.program -> string
