open Import

(** Seed-range differential fuzz campaigns.

    For every seed in the range: generate a control-flow IR program,
    run it through the three-way oracle on each selected table engine,
    and on failure greedily shrink it (re-checking the oracle at every
    step) and persist the reproducer to the divergence corpus. *)

type engine_sel = Dense | Packed | Both

(** Register allocator(s) under test: the stack discipline, the graph
    colorer, or both — [Rboth] adds a [<target>-color] engine next to
    the stack ones, so the oracle is differential over the allocator. *)
type regalloc_sel = Rstack | Rcolor | Rboth

type config = {
  seed_lo : int;
  seed_hi : int;  (** inclusive *)
  gen : Treegen.config;
  engine : engine_sel;
  regalloc : regalloc_sel;
  targets : Backend.target list;
      (** backends under test; the PCC baseline joins only when the
          VAX is among them (it emits VAX assembly) *)
  straight_line : bool;  (** use the straight-line generator instead *)
  corpus_dir : string;  (** where divergence dumps go *)
  max_shrink_checks : int;
  jobs : int;
      (** domains for each generated program's compiles
          ({!Oracle.check}'s [jobs]); shrinking stays single-threaded *)
  log : string Fmt.t option;  (** per-event progress lines, if wanted *)
}

val default_config : config

type divergence = {
  seed : int;
  failure : Oracle.failure;
  shrunk : Tree.program;  (** minimised reproducer *)
  shrunk_stmts : int;
  dump : string option;  (** path of the [.ir] dump, if persisted *)
}

type result = {
  programs : int;
  divergences : divergence list;
  fired : int list;  (** production ids fired across the campaign *)
  seconds : float;
}

(** Generate the program a campaign would run for one seed. *)
val program_of_seed : config -> int -> Tree.program

(** The engines a selection denotes for each target (default VAX
    only), built for the default grammar. *)
val engines_of :
  ?targets:Backend.target list ->
  ?regalloc:regalloc_sel ->
  engine_sel ->
  Oracle.engines

val run : config -> result

(** Re-run one persisted reproducer ([.ir] dump) through the oracle;
    [Ok] means it no longer diverges. *)
val replay :
  ?engine:engine_sel ->
  ?regalloc:regalloc_sel ->
  ?targets:Backend.target list ->
  string ->
  (Interp.outcome, Oracle.failure) Result.t
