open Import

module Iset = Set.Make (Int)

let counts_now () =
  List.fold_left
    (fun m (pid, n) -> (pid, n) :: m)
    []
    (Profile.production_counts ())

let with_fired f =
  let before = counts_now () in
  let lookup m pid = try List.assoc pid m with Not_found -> 0 in
  let saved = !Profile.coverage_enabled in
  Profile.coverage_enabled := true;
  let result =
    Fun.protect ~finally:(fun () -> Profile.coverage_enabled := saved) f
  in
  let after = counts_now () in
  let fired =
    List.filter_map
      (fun (pid, n) -> if n > lookup before pid then Some pid else None)
      after
    |> List.sort compare
  in
  (result, fired)

let fired_ids () = List.map fst (Profile.production_counts ())

type report = { total : int; fired : int list; never_fired : int list }

let report (g : Grammar.t) ~fired =
  let total = Grammar.n_productions g in
  let fired_set = Iset.of_list fired in
  let never =
    List.filter
      (fun pid -> not (Iset.mem pid fired_set))
      (List.init total (fun i -> i))
  in
  { total; fired = Iset.elements fired_set; never_fired = never }

let baseline (tables : Driver.tables) =
  let compile prog = ignore (Driver.compile_program ~tables prog) in
  let (), fired =
    with_fired (fun () ->
        List.iter
          (fun (_, src) -> compile (Gg_frontc.Sema.compile src))
          Gg_frontc.Corpus.fixed_programs;
        for seed = 1 to 8 do
          compile (Treegen.program ~seed ~stmts:12)
        done)
  in
  fired

let pp_report ?baseline ?(verbose = false) (g : Grammar.t) ppf (r : report) =
  Fmt.pf ppf "production coverage: %d/%d fired (%.1f%%), %d never fired@."
    (List.length r.fired) r.total
    (100. *. float_of_int (List.length r.fired) /. float_of_int (max 1 r.total))
    (List.length r.never_fired);
  (match baseline with
  | Some base ->
    let base_set = Iset.of_list base in
    let extra =
      List.filter (fun pid -> not (Iset.mem pid base_set)) r.fired
    in
    Fmt.pf ppf
      "baseline (fixed corpus + straight-line trees): %d fired; fuzz adds %d \
       productions the baseline never fires@."
      (Iset.cardinal base_set) (List.length extra)
  | None -> ());
  if verbose && r.never_fired <> [] then begin
    Fmt.pf ppf "never fired:@.";
    List.iter
      (fun pid ->
        Fmt.pf ppf "  %a@." (Grammar.pp_production g) (Grammar.production g pid))
      r.never_fired
  end
