open Import

type reason = Diverged of string | Crash of string
type failure = { backend : string; reason : reason }

exception Invalid of string

let pp_failure ppf f =
  match f.reason with
  | Diverged d -> Fmt.pf ppf "%s: observable state differs: %s" f.backend d
  | Crash m -> Fmt.pf ppf "%s: crash: %s" f.backend m

let pp_v = Interp.pp_value

let compare_observations ~(reference : Interp.outcome) (s : Simout.t) =
  if not (Interp.value_equal s.Simout.return_value reference.Interp.return_value)
  then
    Error
      (Fmt.str "return value %a, expected %a" pp_v s.Simout.return_value pp_v
         reference.Interp.return_value)
  else if s.Simout.output <> reference.Interp.output then
    Error
      (Fmt.str "print output %a, expected %a"
         Fmt.(Dump.list string)
         s.Simout.output
         Fmt.(Dump.list string)
         reference.Interp.output)
  else
    (* match globals by name so that a missing or extra one is named
       rather than surfacing as an opaque length mismatch *)
    let rec walk gs is =
      match (gs, is) with
      | [], [] -> Ok ()
      | (n, _) :: _, [] -> Error (Fmt.str "extra global %s" n)
      | [], (n, _) :: _ -> Error (Fmt.str "global %s missing" n)
      | (n1, v1) :: gs', (n2, v2) :: is' ->
        if n1 <> n2 then Error (Fmt.str "global order differs: %s vs %s" n1 n2)
        else if not (Interp.value_equal v1 v2) then
          Error (Fmt.str "global %s = %a, expected %a" n1 pp_v v1 pp_v v2)
        else walk gs' is'
    in
    walk s.Simout.globals reference.Interp.globals

let default_grammar () = Lazy.force Gg_vax.Grammar_def.default_grammar

type engine = {
  e_name : string;
  e_tables : Driver.tables;
  e_options : Driver.options option;
      (* per-engine override of [check]'s ~options; this is how one
         oracle run becomes differential over the register allocator *)
}

type engines = engine list

let engine ?options e_name e_tables = { e_name; e_tables; e_options = options }

(* engines for an arbitrary target, named <target>-<representation> so
   a failure pins down both the backend and the table encoding *)
let dense_engine_for target =
  let b = Targets.backend_of target in
  engine
    (Targets.name target ^ "-dense")
    (Driver.of_engine ~backend:b
       (Matcher.engine (Tables.build (Lazy.force b.Backend.default_grammar))))

let packed_engine_for target =
  engine (Targets.name target ^ "-packed") (Targets.default_tables target)

(* the packed tables again, but allocating with the graph colorer: in a
   mixed engine list the oracle pits stack against color through the
   shared interpreter reference *)
let color_engine_for target =
  engine
    ~options:
      { Driver.default_options with Driver.regalloc = Driver.Color }
    (Targets.name target ^ "-color")
    (Targets.default_tables target)

(* the historical names for the original backend *)
let dense_engine () =
  engine "gg-dense"
    (Driver.of_engine ~backend:Backend.vax
       (Matcher.engine (Tables.build (default_grammar ()))))

let packed_engine () = engine "gg-packed" (Lazy.force Driver.default_tables)
let default_engines () = [ packed_engine () ]

let check ?(options = Driver.default_options) ?(pcc = true) ?(jobs = 1)
    ?(max_steps = 10_000_000) ~(engines : engines) (prog : Tree.program) =
  let reference =
    try Interp.run ~max_steps prog ~entry:"main" []
    with Interp.Runtime_error m -> raise (Invalid m)
  in
  let run_assembly ~target backend assembly =
    match
      Targets.run_text ~target ~max_steps:(4 * max_steps) assembly
        ~global_types:prog.Tree.globals ~entry:"main" []
    with
    | out -> (
      match compare_observations ~reference out with
      | Ok () -> None
      | Error detail -> Some { backend; reason = Diverged detail })
    | exception Targets.Sim_error m ->
      Some { backend; reason = Crash (Fmt.str "simulator: %s" m) }
    | exception Targets.Parse_error (l, m) ->
      Some { backend; reason = Crash (Fmt.str "asm parse error line %d: %s" l m) }
  in
  let check_gg e =
    let tables = e.e_tables in
    let options = Option.value e.e_options ~default:options in
    let target = (Driver.backend tables).Backend.target in
    match Driver.compile_program ~options ~tables ~jobs prog with
    | out -> run_assembly ~target e.e_name out.Driver.assembly
    | exception Matcher.Reject err ->
      Some
        { backend = e.e_name; reason = Crash (Fmt.str "%a" Matcher.pp_error err) }
    | exception Failure m -> Some { backend = e.e_name; reason = Crash m }
  in
  let check_pcc () =
    if not pcc then None
    else
      match Pcc.compile_program ~peephole:options.Driver.peephole prog with
      | out -> run_assembly ~target:Backend.Vax "pcc" out.Pcc.assembly
      | exception Failure m -> Some { backend = "pcc"; reason = Crash m }
  in
  let rec first = function
    | [] -> Ok reference
    | f :: rest -> ( match f () with Some fl -> Error fl | None -> first rest)
  in
  first (List.map (fun e () -> check_gg e) engines @ [ check_pcc ])
