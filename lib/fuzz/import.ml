(* Short aliases for modules used throughout this library. *)
module Dtype = Gg_ir.Dtype
module Op = Gg_ir.Op
module Tree = Gg_ir.Tree
module Label = Gg_ir.Label
module Regconv = Gg_ir.Regconv
module Treegen = Gg_ir.Treegen
module Interp = Gg_ir.Interp
module Grammar = Gg_grammar.Grammar
module Symtab = Gg_grammar.Symtab
module Tables = Gg_tablegen.Tables
module Matcher = Gg_matcher.Matcher
module Driver = Gg_codegen.Driver
module Pcc = Gg_pcc.Pcc
module Machine = Gg_vaxsim.Machine
module Asmparse = Gg_vaxsim.Asmparse
module Profile = Gg_profile.Profile
