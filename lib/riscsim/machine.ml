open Import

type outcome = Gg_ir.Simout.t = {
  return_value : Interp.value;
  globals : (string * Interp.value) list;
  output : string list;
  insns_executed : int;
  cycles : int;
}

exception Sim_error of string

let error fmt = Fmt.kstr (fun s -> raise (Sim_error s)) fmt

let mem_size = 1 lsl 20
let globals_base = 0x100

(* -- loaded program ------------------------------------------------------- *)

type image = {
  code : Insn.t array;
  func_of_pc : string array;  (** enclosing function of each instruction *)
  entries : (string, int) Hashtbl.t;  (** global label -> code index *)
  labels : (string * Label.t, int) Hashtbl.t;  (** (function, L) -> index *)
  symbols : (string, int) Hashtbl.t;  (** global name -> address *)
}

let load (p : Asmparse.program) =
  let code = ref [] in
  let n = ref 0 in
  let func_of = ref [] in
  let entries = Hashtbl.create 16 in
  let labels = Hashtbl.create 64 in
  let symbols = Hashtbl.create 16 in
  let current = ref "?" in
  let next_addr = ref globals_base in
  List.iter
    (fun (item : Asmparse.item) ->
      match item with
      | Asmparse.Globl _ -> ()
      | Asmparse.Comm (name, size) ->
        let align =
          if size mod 8 = 0 then 8
          else if size mod 4 = 0 then 4
          else if size mod 2 = 0 then 2
          else 1
        in
        next_addr := (!next_addr + align - 1) / align * align;
        Hashtbl.replace symbols name !next_addr;
        next_addr := !next_addr + size
      | Asmparse.Deflabel name ->
        current := name;
        Hashtbl.replace entries name !n
      | Asmparse.Locallabel l -> Hashtbl.replace labels (!current, l) !n
      | Asmparse.Instruction i ->
        code := i :: !code;
        func_of := !current :: !func_of;
        incr n)
    p.Asmparse.items;
  {
    code = Array.of_list (List.rev !code);
    func_of_pc = Array.of_list (List.rev !func_of);
    entries;
    labels;
    symbols;
  }

(* -- machine state -------------------------------------------------------- *)

type state = {
  image : image;
  mem : Bytes.t;
  regs : int64 array;  (** 32-bit values, sign-extended into int64 *)
  mutable flag_n : bool;  (** signed less-than from the last cmp *)
  mutable flag_z : bool;  (** equal from the last cmp *)
  mutable flag_c : bool;  (** unsigned less-than from the last cmp *)
  out : Buffer.t;
  mutable pc : int;
  mutable depth : int;  (** call depth; ret at depth 0 stops execution *)
  mutable steps : int;
  mutable cycles : int;
  max_steps : int;
}

let wrap32 n = Int64.of_int32 (Int64.to_int32 n)

let reg_get st r = st.regs.(r)
let reg_set st r v = st.regs.(r) <- wrap32 v

let check_addr st addr size =
  if addr < 0 || addr + size > Bytes.length st.mem then
    error "memory access out of range: %d" addr

let load_bytes st addr size =
  check_addr st addr size;
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        (Int64.logor (Int64.shift_left acc 8)
           (Int64.of_int (Char.code (Bytes.get st.mem (addr + i)))))
  in
  go (size - 1) 0L

let store_bytes st addr size v =
  check_addr st addr size;
  for i = 0 to size - 1 do
    Bytes.set st.mem (addr + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let push_long st v =
  reg_set st Regconv.sp (Int64.sub (reg_get st Regconv.sp) 4L);
  store_bytes st (Int64.to_int (reg_get st Regconv.sp)) 4 v

let pop_long st =
  let v = load_bytes st (Int64.to_int (reg_get st Regconv.sp)) 4 in
  reg_set st Regconv.sp (Int64.add (reg_get st Regconv.sp) 4L);
  Tree.wrap Dtype.Long v

(* -- operand access ------------------------------------------------------- *)

type access = { width : int; float_ : bool }

let acc_of_type ty = { width = Dtype.size ty; float_ = Dtype.is_float ty }

let symbol_addr st s =
  match Hashtbl.find_opt st.image.symbols s with
  | Some a -> a
  | None -> error "undefined symbol %s" s

(* effective address of a memory operand — no side effects and no
   scaling: the RISC has neither auto modes nor indexing *)
let effective_addr st (m : Mode.mem) =
  (match (m.Mode.auto, m.Mode.index) with
  | None, None -> ()
  | _ -> error "VAX addressing mode reached the RISC simulator");
  let base =
    match m.Mode.base with
    | Some b -> Int64.to_int (reg_get st b)
    | None -> 0
  in
  let sym = match m.Mode.sym with Some s -> symbol_addr st s | None -> 0 in
  base + sym + Int64.to_int m.Mode.disp

let sign_extend width v =
  match width with
  | 1 -> Tree.wrap Dtype.Byte v
  | 2 -> Tree.wrap Dtype.Word v
  | 4 -> Tree.wrap Dtype.Long v
  | 8 -> v
  | _ -> assert false

(* The load/store discipline, enforced: every operand position states
   which kinds it accepts, and anything else is a simulator error.
   This is the executable form of the machine's operand constraints —
   a code-generator bug that leaks a memory operand into an ALU
   position fails loudly here instead of silently computing. *)

let require_reg what (operand : Mode.t) =
  match operand with
  | Mode.Reg r -> r
  | o -> error "%s must be a register, got %s" what (Mode.assembly o)

let require_mem what (operand : Mode.t) =
  match operand with
  | Mode.Mem m -> m
  | o -> error "%s must be a memory reference, got %s" what (Mode.assembly o)

let require_reg_or_imm what (operand : Mode.t) =
  match operand with
  | Mode.Reg _ | Mode.Imm _ -> operand
  | o -> error "%s must be a register or immediate, got %s" what
           (Mode.assembly o)

(* read an integer from a register (pair for width 8) or immediate *)
let read_int st (operand : Mode.t) access =
  match operand with
  | Mode.Imm n -> sign_extend access.width n
  | Mode.Fimm _ -> error "float literal in integer context"
  | Mode.Reg r ->
    if access.width = 8 then
      (* register pair rn/rn+1: rn low half, rn+1 high half *)
      Int64.logor
        (Int64.logand (reg_get st r) 0xffffffffL)
        (Int64.shift_left (reg_get st (r + 1)) 32)
    else sign_extend access.width (reg_get st r)
  | Mode.Mem m ->
    sign_extend access.width (load_bytes st (effective_addr st m) access.width)

let write_int st (operand : Mode.t) access v =
  match operand with
  | Mode.Imm _ | Mode.Fimm _ -> error "store to an immediate"
  | Mode.Reg r ->
    if access.width = 8 then begin
      reg_set st r (Int64.logand v 0xffffffffL);
      reg_set st (r + 1) (Int64.shift_right v 32)
    end
    else reg_set st r (sign_extend access.width v)
  | Mode.Mem m -> store_bytes st (effective_addr st m) access.width v

let read_float st (operand : Mode.t) access =
  match operand with
  | Mode.Fimm f -> f
  | Mode.Imm n -> Int64.to_float n
  | Mode.Reg _ | Mode.Mem _ ->
    let bits = read_int st operand access in
    if access.width = 4 then Int32.float_of_bits (Int64.to_int32 bits)
    else Int64.float_of_bits bits

let write_float st operand access f =
  let bits =
    if access.width = 4 then Int64.of_int32 (Int32.bits_of_float f)
    else Int64.bits_of_float f
  in
  write_int st operand access bits

(* -- flags (set only by cmp) ---------------------------------------------- *)

let unsigned_of_width width n =
  match width with
  | 1 -> Int64.logand n 0xffL
  | 2 -> Int64.logand n 0xffffL
  | 4 -> Int64.logand n 0xffffffffL
  | _ -> n

let set_flags_cmp_int st ~width a b =
  st.flag_z <- Int64.equal a b;
  st.flag_n <- Int64.compare a b < 0;
  st.flag_c <-
    Int64.unsigned_compare (unsigned_of_width width a)
      (unsigned_of_width width b)
    < 0

let set_flags_cmp_float st a b =
  st.flag_z <- a = b;
  st.flag_n <- a < b;
  st.flag_c <- false

let branch_taken st cc =
  match cc with
  | "b" -> true
  | "beq" -> st.flag_z
  | "bne" -> not st.flag_z
  | "blt" -> st.flag_n
  | "ble" -> st.flag_n || st.flag_z
  | "bgt" -> not (st.flag_n || st.flag_z)
  | "bge" -> not st.flag_n
  | "bltu" -> st.flag_c
  | "bleu" -> st.flag_c || st.flag_z
  | "bgtu" -> not (st.flag_c || st.flag_z)
  | "bgeu" -> not st.flag_c
  | _ -> error "unknown branch %s" cc

(* -- instruction execution ------------------------------------------------- *)

let type_of_char = function
  | 'b' -> Dtype.Byte
  | 'w' -> Dtype.Word
  | 'l' -> Dtype.Long
  | 'f' -> Dtype.Flt
  | 'd' -> Dtype.Dbl
  | c -> error "unknown type suffix %c" c

(* saved state layout pushed by calls (beyond the argument list):
   argc, return pc, saved fp, saved ap, saved r2..r11 — identical to
   the VAX simulator so the two targets share a calling convention *)
let do_call st fname argc ret_pc =
  match fname with
  | "print" ->
    let sp = Int64.to_int (reg_get st Regconv.sp) in
    let line =
      if argc = 2 then
        Fmt.str "%g" (Int64.float_of_bits (load_bytes st sp 8))
      else Fmt.str "%Ld" (Tree.wrap Dtype.Long (load_bytes st sp 4))
    in
    Buffer.add_string st.out (line ^ "\n");
    reg_set st Regconv.sp
      (Int64.add (reg_get st Regconv.sp) (Int64.of_int (4 * argc)));
    st.pc <- ret_pc
  | _ -> (
    (* no __udivl/__umodl here: the RISC has real unsigned divide and
       remainder instructions *)
    match Hashtbl.find_opt st.image.entries fname with
    | None -> error "call to undefined function %s" fname
    | Some target ->
      push_long st (Int64.of_int argc);
      push_long st (Int64.of_int ret_pc);
      push_long st (reg_get st Regconv.fp);
      push_long st (reg_get st Regconv.ap);
      for r = 2 to 11 do
        push_long st (reg_get st r)
      done;
      (* ap points at the argument count; 4(ap) is the first argument *)
      reg_set st Regconv.ap
        (Int64.add (reg_get st Regconv.sp) (Int64.of_int (4 * 13)));
      reg_set st Regconv.fp (reg_get st Regconv.sp);
      st.depth <- st.depth + 1;
      st.pc <- target)

let do_ret st =
  reg_set st Regconv.sp (reg_get st Regconv.fp);
  for r = 11 downto 2 do
    reg_set st r (pop_long st)
  done;
  let ap = pop_long st in
  let fp = pop_long st in
  let ret_pc = pop_long st in
  let argc = pop_long st in
  reg_set st Regconv.ap ap;
  reg_set st Regconv.fp fp;
  reg_set st Regconv.sp
    (Int64.add (reg_get st Regconv.sp) (Int64.mul 4L argc));
  st.depth <- st.depth - 1;
  st.pc <- Int64.to_int ret_pc

let exec_general st mnemonic operands =
  let n = String.length mnemonic in
  let prefix k = if n >= k then String.sub mnemonic 0 k else "" in
  (* three-address dst := x OP y, register sources (y may be an
     immediate for the integer forms) *)
  let arith3 f_int f_float tchar =
    let ty = type_of_char tchar in
    let a = acc_of_type ty in
    match operands with
    | [ x; y; dst ] ->
      ignore (require_reg "alu destination" dst);
      if Dtype.is_float ty then begin
        ignore (require_reg "float alu source" x);
        ignore (require_reg "float alu source" y);
        let v = f_float (read_float st x a) (read_float st y a) in
        write_float st dst a v
      end
      else begin
        ignore (require_reg "alu source" x);
        ignore (require_reg_or_imm "alu source" y);
        let v =
          sign_extend a.width (f_int (read_int st x a) (read_int st y a))
        in
        write_int st dst a v
      end
    | _ -> error "%s: bad operand count" mnemonic
  in
  let no_float name _ _ : float = error "%s on float" name in
  let shift ~left =
    (* slll v,c,rd / sral v,c,rd: a nonnegative count shifts in the
       instruction's own direction, a negative count the other way
       (the VAX ashl convention, so shift trees translate directly) *)
    match operands with
    | [ v; c; dst ] ->
      ignore (require_reg "shift source" v);
      ignore (require_reg_or_imm "shift count" c);
      ignore (require_reg "shift destination" dst);
      let a4 = acc_of_type Dtype.Long in
      let cnt = Int64.to_int (read_int st c a4) in
      let value = read_int st v a4 in
      let cnt = if left then cnt else -cnt in
      let r =
        if cnt >= 0 then Int64.shift_left value (min cnt 63)
        else Int64.shift_right value (min (-cnt) 63)
      in
      write_int st dst a4 (sign_extend 4 r)
    | _ -> error "%s: bad operand count" mnemonic
  in
  let unsigned_divide ~rem =
    match operands with
    | [ x; y; dst ] ->
      ignore (require_reg "alu source" x);
      ignore (require_reg_or_imm "alu source" y);
      ignore (require_reg "alu destination" dst);
      let a4 = acc_of_type Dtype.Long in
      let a = unsigned_of_width 4 (read_int st x a4) in
      let b = unsigned_of_width 4 (read_int st y a4) in
      if Int64.equal b 0L then error "unsigned division by zero";
      let r =
        if rem then Int64.unsigned_rem a b else Int64.unsigned_div a b
      in
      write_int st dst a4 (sign_extend 4 r)
    | _ -> error "%s: bad operand count" mnemonic
  in
  match mnemonic with
  | "la" -> (
    match operands with
    | [ src; dst ] ->
      let m = require_mem "la source" src in
      ignore (require_reg "la destination" dst);
      let addr = effective_addr st m in
      write_int st dst (acc_of_type Dtype.Long) (Int64.of_int addr)
    | _ -> error "la: bad operands")
  | "slll" -> shift ~left:true
  | "sral" -> shift ~left:false
  | "divul" -> unsigned_divide ~rem:false
  | "remul" -> unsigned_divide ~rem:true
  | _ when prefix 2 = "li" && n = 3 -> (
    match operands with
    | [ src; dst ] ->
      let ty = type_of_char mnemonic.[2] in
      let a = acc_of_type ty in
      ignore (require_reg "li destination" dst);
      (match (src, Dtype.is_float ty) with
      | Mode.Fimm f, true -> write_float st dst a f
      | Mode.Imm v, true -> write_float st dst a (Int64.to_float v)
      | Mode.Imm v, false -> write_int st dst a (sign_extend a.width v)
      | o, _ ->
        error "li source must be a literal, got %s" (Mode.assembly o))
    | _ -> error "li: bad operands")
  | _ when prefix 2 = "ld" && n = 3 -> (
    match operands with
    | [ src; dst ] ->
      let ty = type_of_char mnemonic.[2] in
      let a = acc_of_type ty in
      ignore (require_mem "ld source" src);
      ignore (require_reg "ld destination" dst);
      if Dtype.is_float ty then write_float st dst a (read_float st src a)
      else write_int st dst a (read_int st src a)
    | _ -> error "ld: bad operands")
  | _ when prefix 2 = "st" && n = 3 -> (
    match operands with
    | [ src; dst ] ->
      let ty = type_of_char mnemonic.[2] in
      let a = acc_of_type ty in
      ignore (require_reg "st source" src);
      ignore (require_mem "st destination" dst);
      if Dtype.is_float ty then write_float st dst a (read_float st src a)
      else write_int st dst a (read_int st src a)
    | _ -> error "st: bad operands")
  | _ when prefix 2 = "mv" && n = 3 -> (
    match operands with
    | [ src; dst ] ->
      let ty = type_of_char mnemonic.[2] in
      let a = acc_of_type ty in
      ignore (require_reg "mv source" src);
      ignore (require_reg "mv destination" dst);
      if Dtype.is_float ty then write_float st dst a (read_float st src a)
      else write_int st dst a (read_int st src a)
    | _ -> error "mv: bad operands")
  | _ when prefix 3 = "neg" && n = 4 -> (
    match operands with
    | [ src; dst ] ->
      let ty = type_of_char mnemonic.[3] in
      let a = acc_of_type ty in
      ignore (require_reg "neg source" src);
      ignore (require_reg "neg destination" dst);
      if Dtype.is_float ty then write_float st dst a (-.read_float st src a)
      else
        write_int st dst a
          (sign_extend a.width (Int64.neg (read_int st src a)))
    | _ -> error "neg: bad operands")
  | _ when prefix 3 = "not" && n = 4 -> (
    match operands with
    | [ src; dst ] ->
      let ty = type_of_char mnemonic.[3] in
      let a = acc_of_type ty in
      if a.float_ then error "not on float";
      ignore (require_reg "not source" src);
      ignore (require_reg "not destination" dst);
      write_int st dst a
        (sign_extend a.width (Int64.lognot (read_int st src a)))
    | _ -> error "not: bad operands")
  | _ when prefix 3 = "cvt" && n = 5 -> (
    match operands with
    | [ src; dst ] ->
      let fty = type_of_char mnemonic.[3] in
      let tty = type_of_char mnemonic.[4] in
      let fa = acc_of_type fty in
      let ta = acc_of_type tty in
      ignore (require_reg "cvt source" src);
      ignore (require_reg "cvt destination" dst);
      if Dtype.is_float fty && Dtype.is_float tty then
        write_float st dst ta (read_float st src fa)
      else if Dtype.is_float fty then
        write_int st dst ta
          (sign_extend ta.width (Int64.of_float (read_float st src fa)))
      else if Dtype.is_float tty then
        write_float st dst ta (Int64.to_float (read_int st src fa))
      else
        write_int st dst ta (sign_extend ta.width (read_int st src fa))
    | _ -> error "cvt: bad operands")
  | _ when prefix 3 = "cmp" && n = 4 -> (
    match operands with
    | [ x; y ] ->
      let ty = type_of_char mnemonic.[3] in
      let a = acc_of_type ty in
      if Dtype.is_float ty then begin
        ignore (require_reg "cmp source" x);
        ignore (require_reg "cmp source" y);
        set_flags_cmp_float st (read_float st x a) (read_float st y a)
      end
      else begin
        ignore (require_reg "cmp source" x);
        ignore (require_reg_or_imm "cmp source" y);
        set_flags_cmp_int st ~width:a.width (read_int st x a)
          (read_int st y a)
      end
    | _ -> error "cmp: bad operands")
  | _ when prefix 3 = "add" && n = 4 -> arith3 Int64.add ( +. ) mnemonic.[3]
  | _ when prefix 3 = "sub" && n = 4 -> arith3 Int64.sub ( -. ) mnemonic.[3]
  | _ when prefix 3 = "mul" && n = 4 -> arith3 Int64.mul ( *. ) mnemonic.[3]
  | _ when prefix 3 = "div" && n = 4 ->
    arith3
      (fun a b ->
        if Int64.equal b 0L then error "division by zero";
        Int64.div a b)
      (fun a b -> a /. b)
      mnemonic.[3]
  | _ when prefix 3 = "rem" && n = 4 ->
    arith3
      (fun a b ->
        if Int64.equal b 0L then error "remainder by zero";
        Int64.rem a b)
      (no_float "rem") mnemonic.[3]
  | _ when prefix 3 = "and" && n = 4 ->
    arith3 Int64.logand (no_float "and") mnemonic.[3]
  | _ when prefix 2 = "or" && n = 3 ->
    arith3 Int64.logor (no_float "or") mnemonic.[2]
  | _ when prefix 3 = "xor" && n = 4 ->
    arith3 Int64.logxor (no_float "xor") mnemonic.[3]
  | _ -> error "unimplemented instruction %s" mnemonic

let step st =
  if st.steps >= st.max_steps then
    error "step budget exceeded (infinite loop?)";
  st.steps <- st.steps + 1;
  let insn = st.image.code.(st.pc) in
  st.cycles <- st.cycles + Insn_table.cycles insn;
  let next = st.pc + 1 in
  match insn with
  | Insn.Lab _ | Insn.Comment _ -> st.pc <- next
  | Insn.Insn (m, ops) ->
    exec_general st m ops;
    st.pc <- next
  | Insn.Branch (cc, l) ->
    if branch_taken st cc then begin
      let f = st.image.func_of_pc.(st.pc) in
      match Hashtbl.find_opt st.image.labels (f, l) with
      | Some target -> st.pc <- target
      | None -> error "undefined label L%d in %s" l f
    end
    else st.pc <- next
  | Insn.Call (f, argc) -> do_call st f argc next
  | Insn.Ret -> do_ret st

let run ?(max_steps = 2_000_000) ?(global_types = []) ?(ret_type = Dtype.Long)
    (p : Asmparse.program) ~entry args =
  let image = load p in
  let st =
    {
      image;
      mem = Bytes.make mem_size '\000';
      regs = Array.make 16 0L;
      flag_n = false;
      flag_z = false;
      flag_c = false;
      out = Buffer.create 256;
      pc = 0;
      depth = 0;
      steps = 0;
      cycles = 0;
      max_steps;
    }
  in
  reg_set st Regconv.sp (Int64.of_int mem_size);
  reg_set st Regconv.fp (Int64.of_int mem_size);
  (* push the entry arguments like a caller would *)
  let slots = ref 0 in
  List.iter
    (fun v ->
      match v with
      | Interp.VInt n ->
        push_long st n;
        incr slots
      | Interp.VFloat f ->
        let bits = Int64.bits_of_float f in
        push_long st (Int64.shift_right_logical bits 32);
        push_long st bits;
        slots := !slots + 2)
    (List.rev args);
  do_call st entry !slots (-1);
  if st.pc < 0 then error "entry %s is a builtin" entry;
  st.depth <- 1;
  while st.depth > 0 && st.pc >= 0 do
    step st
  done;
  let read_global (name, ty, total) =
    if total = Dtype.size ty then begin
      match Hashtbl.find_opt image.symbols name with
      | None -> None
      | Some addr ->
        let a = acc_of_type ty in
        if Dtype.is_float ty then
          Some
            ( name,
              Interp.VFloat
                (if a.width = 4 then
                   Int32.float_of_bits (Int64.to_int32 (load_bytes st addr 4))
                 else Int64.float_of_bits (load_bytes st addr 8)) )
        else
          Some
            (name, Interp.VInt (sign_extend a.width (load_bytes st addr a.width)))
    end
    else None
  in
  let return_value =
    let a = acc_of_type ret_type in
    if Dtype.is_float ret_type then
      Interp.VFloat (read_float st (Mode.Reg Regconv.r0) a)
    else Interp.VInt (read_int st (Mode.Reg Regconv.r0) a)
  in
  {
    return_value;
    globals = List.filter_map read_global global_types;
    output =
      Buffer.contents st.out |> String.split_on_char '\n'
      |> List.filter (fun s -> s <> "");
    insns_executed = st.steps;
    cycles = st.cycles;
  }

let run_text ?max_steps ?global_types ?ret_type text ~entry args =
  run ?max_steps ?global_types ?ret_type (Asmparse.parse text) ~entry args
