open Import

(** Parser for the RISC assembly subset the second backend emits.

    Same structure as {!Gg_vaxsim.Asmparse}, but the operand grammar
    accepts only what a load/store machine has: immediates, registers
    and plain [sym±disp(rn)] memory references.  Autoincrement,
    autodecrement and indexed syntax are {e rejected} — parse failure
    on VAX-only modes is the regression guard that the RISC code
    generator never emits them.  Calls spell [call $n,f]; branch
    mnemonics start with ['b']. *)

type item =
  | Globl of string
  | Comm of string * int  (** name, size in bytes *)
  | Deflabel of string  (** function entry or other global label *)
  | Locallabel of Label.t
  | Instruction of Insn.t

type program = {
  items : item list;
  text : string;  (** original source, for error reporting *)
}

exception Parse_error of int * string  (** line number, message *)

val parse : string -> program

(** Parse a single operand (exposed for tests), e.g. ["a+4(fp)"]. *)
val parse_operand : string -> Mode.t
