(* Short aliases for modules used throughout this library. *)
module Dtype = Gg_ir.Dtype
module Tree = Gg_ir.Tree
module Label = Gg_ir.Label
module Regconv = Gg_ir.Regconv
module Interp = Gg_ir.Interp
module Mode = Gg_ir.Mode
module Insn = Gg_ir.Insn
module Insn_table = Gg_risc.Insn_table
