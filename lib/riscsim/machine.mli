open Import

(** The RISC simulator.

    Executes parsed assembly over a flat byte-addressable memory with
    the same calling convention, arithmetic semantics and observable
    state as {!Gg_ir.Interp} and the VAX simulator — any of the three
    can sit at either end of the differential-testing harness.

    Unlike the VAX model this is a strict load/store machine: every
    operand position checks its operand kind (register, immediate or
    memory) and raises {!Sim_error} on a violation, so a code-generator
    bug that leaks a memory operand into an ALU position fails loudly.
    Only [cmp*] sets the condition flags.

    Builtins: just [print] (one long or double argument, appended to
    the output) — the RISC has real unsigned divide/remainder
    instructions, so the [__udivl]/[__umodl] support routines of the
    VAX backend do not exist here. *)

type outcome = Gg_ir.Simout.t = {
  return_value : Interp.value;
  globals : (string * Interp.value) list;
  output : string list;
  insns_executed : int;
  cycles : int;  (** accumulated {!Gg_risc.Insn_table.cycles} cost *)
}

exception Sim_error of string

(** [run program ~entry args] loads and executes.  [global_types] gives
    the element type of each global so scalar finals can be reported
    (pass the IR program's globals).  [ret_type] tells how to read r0
    at the end. *)
val run :
  ?max_steps:int ->
  ?global_types:(string * Dtype.t * int) list ->
  ?ret_type:Dtype.t ->
  Asmparse.program ->
  entry:string ->
  Interp.value list ->
  outcome

(** Parse and run assembly text in one step. *)
val run_text :
  ?max_steps:int ->
  ?global_types:(string * Dtype.t * int) list ->
  ?ret_type:Dtype.t ->
  string ->
  entry:string ->
  Interp.value list ->
  outcome
