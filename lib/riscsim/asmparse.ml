open Import

type item =
  | Globl of string
  | Comm of string * int
  | Deflabel of string
  | Locallabel of Label.t
  | Instruction of Insn.t

type program = { items : item list; text : string }

exception Parse_error of int * string

let error line fmt = Fmt.kstr (fun s -> raise (Parse_error (line, s))) fmt

let is_digit c = c >= '0' && c <= '9'

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || is_digit c || c = '_' || c = '.'

(* Local labels look like L<number>; everything else is a symbol. *)
let local_label_of name =
  if
    String.length name >= 2
    && name.[0] = 'L'
    && String.for_all is_digit (String.sub name 1 (String.length name - 1))
  then int_of_string_opt (String.sub name 1 (String.length name - 1))
  else None

(* -- operand parsing ------------------------------------------------------ *)

let parse_register s =
  match Regconv.of_name s with
  | Some r -> r
  | None -> failwith ("not a register: " ^ s)

(* Grammar of operands the RISC backend emits:
     $<int>            immediate
     $0f<float>        float literal
     rn | ap | fp | sp register
     body := [sym][+|-disp][(rn)]  memory reference
   The VAX-only modes — autoincrement (rn)+, autodecrement -(rn) and
   indexing [rx] — are rejected: if the code generator ever emitted one
   the simulator would refuse to run it, which is the regression guard
   for the load/store discipline. *)
let parse_operand str =
  let str = String.trim str in
  let fail () = failwith ("bad operand: " ^ str) in
  if str = "" then fail ();
  if str.[0] = '$' then begin
    let lit = String.sub str 1 (String.length str - 1) in
    if String.length lit >= 2 && lit.[0] = '0' && lit.[1] = 'f' then
      Mode.Fimm (float_of_string (String.sub lit 2 (String.length lit - 2)))
    else Mode.Imm (Int64.of_string lit)
  end
  else
    match Regconv.of_name str with
    | Some r -> Mode.Reg r
    | None ->
      let body = str in
      if body.[String.length body - 1] = ']' then
        failwith ("indexed mode is not a RISC operand: " ^ str);
      if body.[0] = '-' && String.length body > 1 && body.[1] = '(' then
        failwith ("autodecrement is not a RISC operand: " ^ str);
      if body.[String.length body - 1] = '+' then
        failwith ("autoincrement is not a RISC operand: " ^ str);
      (* [sym][+-disp][(rn)] *)
      let body, base =
        if body.[String.length body - 1] = ')' then begin
          match String.rindex_opt body '(' with
          | Some i ->
            ( String.sub body 0 i,
              Some
                (parse_register
                   (String.sub body (i + 1) (String.length body - i - 2))) )
          | None -> fail ()
        end
        else (body, None)
      in
      (* split symbolic and numeric parts *)
      let sym, disp =
        if body = "" then (None, 0L)
        else if is_digit body.[0] || body.[0] = '-' then
          (None, Int64.of_string body)
        else begin
          let n = String.length body in
          let rec find_split i =
            if i >= n then n
            else if body.[i] = '+' || (body.[i] = '-' && i > 0) then i
            else find_split (i + 1)
          in
          let cut = find_split 0 in
          let sym = String.sub body 0 cut in
          let disp =
            if cut >= n then 0L
            else
              let rest = String.sub body cut (n - cut) in
              let rest =
                if rest.[0] = '+' then
                  String.sub rest 1 (String.length rest - 1)
                else rest
              in
              Int64.of_string rest
          in
          (Some sym, disp)
        end
      in
      Mode.Mem { base; sym; disp; index = None; auto = None }

(* -- line parsing ---------------------------------------------------------- *)

let split_operands s =
  if String.trim s = "" then []
  else String.split_on_char ',' s |> List.map String.trim

let parse_line lineno line : item list =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let trimmed = String.trim line in
  if trimmed = "" then []
  else if trimmed.[0] = '.' then begin
    match String.split_on_char '\t' trimmed with
    | ".globl" :: rest -> [ Globl (String.trim (String.concat "" rest)) ]
    | ".comm" :: rest -> (
      match String.split_on_char ',' (String.concat "" rest) with
      | [ name; size ] -> (
        match int_of_string_opt (String.trim size) with
        | Some n -> [ Comm (String.trim name, n) ]
        | None -> error lineno "bad .comm size")
      | _ -> error lineno "bad .comm")
    | d :: _ -> error lineno "unknown directive %s" d
    | [] -> []
  end
  else if trimmed.[String.length trimmed - 1] = ':' then begin
    let name = String.sub trimmed 0 (String.length trimmed - 1) in
    if not (String.for_all is_ident_char name) then
      error lineno "bad label %s" name;
    match local_label_of name with
    | Some l -> [ Locallabel l ]
    | None -> [ Deflabel name ]
  end
  else begin
    (* instruction: mnemonic [TAB operands] *)
    let mnemonic, rest =
      match String.index_opt trimmed '\t' with
      | Some i ->
        ( String.sub trimmed 0 i,
          String.sub trimmed (i + 1) (String.length trimmed - i - 1) )
      | None -> (trimmed, "")
    in
    let mnemonic = String.trim mnemonic in
    if not (String.for_all is_ident_char mnemonic) || mnemonic = "" then
      error lineno "bad mnemonic %S" mnemonic;
    match mnemonic with
    | "ret" -> [ Instruction Insn.Ret ]
    | "call" -> (
      match split_operands rest with
      | [ n; f ] when String.length n > 1 && n.[0] = '$' -> (
        match int_of_string_opt (String.sub n 1 (String.length n - 1)) with
        | Some argc -> [ Instruction (Insn.Call (f, argc)) ]
        | None -> error lineno "bad call argument count")
      | _ -> error lineno "bad call operands")
    | _ when mnemonic.[0] = 'b' -> (
      (* b, beq, bne, blt, ble, bgt, bge and the unsigned forms: no
         other RISC mnemonic starts with 'b' *)
      match split_operands rest with
      | [ target ] -> (
        match local_label_of target with
        | Some l -> [ Instruction (Insn.Branch (mnemonic, l)) ]
        | None -> error lineno "branch to non-local label %s" target)
      | _ -> error lineno "bad branch operands")
    | _ -> (
      match List.map parse_operand (split_operands rest) with
      | operands -> [ Instruction (Insn.insn mnemonic operands) ]
      | exception Failure msg -> error lineno "%s" msg)
  end

let parse text =
  let lines = String.split_on_char '\n' text in
  let items =
    List.concat (List.mapi (fun i l -> parse_line (i + 1) l) lines)
  in
  { items; text }
