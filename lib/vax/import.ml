(* Short aliases for modules used throughout this library. *)
module Dtype = Gg_ir.Dtype
module Op = Gg_ir.Op
module Tree = Gg_ir.Tree
module Label = Gg_ir.Label
module Regconv = Gg_ir.Regconv
module Termname = Gg_ir.Termname
module Mode = Gg_ir.Mode
module Insn = Gg_ir.Insn
module Treelang = Gg_ir.Treelang
module Grammar = Gg_grammar.Grammar
module Schema = Gg_grammar.Schema
module Action = Gg_grammar.Action
