open Import

(** The hand-written instruction table (paper Fig. 3).

    Each {e cluster}, looked up by the key stored in a production's
    [Emit] action (e.g. ["add.l"]), is an ordered list of instruction
    variants.  Selection starts at the first entry; the idiom recogniser
    (paper section 5.3.2) may then step to a later entry: a {e binding}
    idiom turns the three-address variant into the two-address one when
    a source operand matches the destination, and a {e range} idiom
    turns the two-address variant into the one-operand one when the
    remaining source is a particular constant (e.g. [addl2 $1,d] into
    [incl d]). *)

type entry = {
  print : string;  (** assembler mnemonic *)
  nops : int;  (** operands of this variant *)
  binding : bool;  (** a source equal to the destination steps down *)
  commutes : bool;  (** the paper's "<->": either source may bind *)
  range : string option;  (** range-idiom key that steps down *)
}

type cluster = entry list

(** Range idiom predicates, keyed by the names used in the table:
    ["$one"] — the source is the immediate 1; ["$zero"] — the immediate
    0. *)
val range_matches : string -> Mode.t -> bool

(** The range idioms proper (paper section 5.3.2, "implemented by
    functions written in C").  [range_apply key sfx src] returns the
    replacement one-operand mnemonic when the idiom fires:
    [range_apply "$add" "l" $1 = Some "incl"],
    [range_apply "$add" "l" $-1 = Some "decl"] (Phase 1b rewrites
    [a - 1] into [a + (-1)]), ["$mov"] with 0 gives [clr],
    ["$cmp"] with 0 gives [tst]. *)
val range_apply : string -> string -> Mode.t -> string option

(** Look up a cluster by key, e.g. ["add.l"], ["mov.b"], ["cvt.bl"],
    ["cmpbr.f"].  Keys follow [<generic-op>.<type-suffix>]. *)
val find : string -> cluster option

val find_exn : string -> cluster

(** Pseudo-instruction cluster keys: patterns whose "instruction" is
    really a multi-instruction expansion performed by the idiom
    recogniser (signed modulus, unsigned division/modulus, logical and,
    right shift; paper section 5.3.2). *)
val is_pseudo : string -> bool

(** All keys referenced by the machine grammar, for coverage checks. *)
val known_keys : unit -> string list
