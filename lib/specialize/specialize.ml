open Import
module Matcher = Gg_matcher.Matcher

type t = {
  n_terms : int;
  n_nonterms : int;
  n_states : int;
  n_hot : int;
  grammar_digest : string;
  profile_digest : string;
  hot : Bytes.t;  (* bitset: 1 = the state is on the hot path *)
  valid : Bytes.t;  (* per dense action cell, as in Packed *)
  defaults : int array;
  act_base : int array;  (* >= 0: hot comb displacement; -1: cold state *)
  act_check : int array;  (* padded to max hot base + width: no bounds check *)
  act_value : int array;
  cold_off : int array;  (* n_states + 1 prefix offsets into cold_col/val *)
  cold_col : int array;  (* per cold state, exception columns ascending *)
  cold_val : int array;
  goto_base : int array;
  goto_check : int array;
  goto_value : int array;
  aux : int array array;
}

let is_hot t s =
  Char.code (Bytes.unsafe_get t.hot (s lsr 3)) land (1 lsl (s land 7)) <> 0

(* -- heat estimation ------------------------------------------------------ *)

(* A profile counts production firings; the table is indexed by state.
   Credit each state's cells from the profile: a reduce cell carries
   its productions' counts directly, and a shift cell on terminal [a]
   carries the counts of every production whose right-hand side
   mentions [a] — a production cannot fire without first shifting each
   of its terminals, so shift-only states inherit the heat of the
   reductions they feed. *)
let state_heats (tables : Tables.t) (profile : Heat.t) =
  let g = Tables.grammar tables in
  let n_prods = Grammar.n_productions g in
  let prod_heat = Array.make (max 1 n_prods) 0 in
  List.iter
    (fun (id, c) ->
      (* foreign ids (another grammar's profile, a fuzzer) carry no
         weight here but stay in the profile digest *)
      if id < n_prods then prod_heat.(id) <- prod_heat.(id) + c)
    profile.Heat.counts;
  let nt = Symtab.n_terms g.Grammar.symtab in
  let term_heat = Array.make (nt + 1) 0 in
  for p = 0 to n_prods - 1 do
    if prod_heat.(p) > 0 then
      Array.iter
        (function
          | Symtab.T a -> term_heat.(a) <- term_heat.(a) + prod_heat.(p)
          | Symtab.N _ -> ())
        (Grammar.production g p).Grammar.rhs
  done;
  let n_states = Tables.n_states tables in
  Array.init n_states (fun s ->
      let acc = ref 0 in
      Array.iteri
        (fun a cell ->
          match cell with
          | Tables.Error | Tables.Accept -> ()
          | Tables.Shift _ -> acc := !acc + term_heat.(a)
          | Tables.Reduce candidates ->
            Array.iter (fun p -> acc := !acc + prod_heat.(p)) candidates)
        tables.Tables.action.(s);
      !acc)

(* hot = the smallest heat-first state prefix covering this share of
   the total estimated heat (state 0 always rides along: every parse
   starts there) *)
let default_coverage = 0.9

let build ?(coverage = default_coverage) ~(profile : Heat.t)
    (tables : Tables.t) =
  let p = Packed.prepare tables in
  let n = p.Packed.p_n_states in
  let width = p.Packed.p_width in
  let heats = state_heats tables profile in
  let total = Array.fold_left ( + ) 0 heats in
  let hot = Bytes.make ((n + 7) / 8) '\000' in
  let set_hot s =
    Bytes.set hot (s lsr 3)
      (Char.chr (Char.code (Bytes.get hot (s lsr 3)) lor (1 lsl (s land 7))))
  in
  if total = 0 then
    (* no usable heat (empty profile, foreign ids only): degenerate to
       the baseline layout with every state hot *)
    for s = 0 to n - 1 do
      set_hot s
    done
  else begin
    let order = Array.init n (fun s -> s) in
    Array.sort
      (fun a b ->
        match Int.compare heats.(b) heats.(a) with
        | 0 -> Int.compare a b
        | c -> c)
      order;
    let target =
      int_of_float (ceil (coverage *. float_of_int total)) |> max 1
    in
    let acc = ref 0 in
    Array.iter
      (fun s ->
        if !acc < target && heats.(s) > 0 then begin
          acc := !acc + heats.(s);
          set_hot s
        end)
      order;
    set_hot 0
  end;
  let hot_bit s =
    Char.code (Bytes.get hot (s lsr 3)) land (1 lsl (s land 7)) <> 0
  in
  let act_rows = Array.make n [] in
  List.iter (fun (s, entries) -> act_rows.(s) <- entries) p.Packed.p_act_rows;
  (* hot rows, hottest first (then densest, then by id, so the order is
     total): the first-fit packer lays them down in this order, landing
     the workload's working set in the low, cache-resident slots *)
  let hot_states =
    List.init n (fun s -> s)
    |> List.filter hot_bit
    |> List.sort (fun a b ->
           match Int.compare heats.(b) heats.(a) with
           | 0 -> (
             match
               Int.compare
                 (List.length act_rows.(b))
                 (List.length act_rows.(a))
             with
             | 0 -> Int.compare a b
             | c -> c)
           | c -> c)
  in
  let n_hot = List.length hot_states in
  let act_base, act_check, act_value =
    Packed.comb_pack ~keep_order:true ~width ~n_states:n
      (List.map (fun s -> (s, act_rows.(s))) hot_states)
  in
  (* pad the comb past every hot row's last reachable slot so the hot
     probe needs no bounds check ([action_code] reads unsafely) *)
  let needed =
    List.fold_left
      (fun m s -> max m (act_base.(s) + width))
      (Array.length act_check) hot_states
  in
  let pad arr fill =
    let out = Array.make needed fill in
    Array.blit arr 0 out 0 (Array.length arr);
    out
  in
  let act_check = pad act_check (-1) in
  let act_value = pad act_value 0 in
  (* cold states fall back to exact per-state exception lists, searched
     by column: no comb slack, no padding, still O(log row) *)
  let cold_off = Array.make (n + 1) 0 in
  let cold_cols = ref [] and cold_vals = ref [] and n_cold_entries = ref 0 in
  for s = 0 to n - 1 do
    cold_off.(s) <- !n_cold_entries;
    if not (hot_bit s) then begin
      act_base.(s) <- -1;
      let entries = List.sort compare act_rows.(s) in
      List.iter
        (fun (col, code) ->
          cold_cols := col :: !cold_cols;
          cold_vals := code :: !cold_vals;
          incr n_cold_entries)
        entries
    end
  done;
  cold_off.(n) <- !n_cold_entries;
  let cold_col = Array.of_list (List.rev !cold_cols) in
  let cold_val = Array.of_list (List.rev !cold_vals) in
  (* the goto comb is off the per-token probe path; keep the baseline
     densest-first layout *)
  let goto_base, goto_check, goto_value =
    Packed.comb_pack ~width:p.Packed.p_n_nonterms ~n_states:n
      p.Packed.p_goto_rows
  in
  {
    n_terms = p.Packed.p_n_terms;
    n_nonterms = p.Packed.p_n_nonterms;
    n_states = n;
    n_hot;
    grammar_digest = p.Packed.p_grammar_digest;
    profile_digest = Heat.digest profile;
    hot;
    valid = p.Packed.p_valid;
    defaults = p.Packed.p_defaults;
    act_base;
    act_check;
    act_value;
    cold_off;
    cold_col;
    cold_val;
    goto_base;
    goto_check;
    goto_value;
    aux = p.Packed.p_aux;
  }

(* -- lookups -------------------------------------------------------------- *)

(* The hot path after the validity probe is three unsafe loads and one
   compare: the base doubles as the hot/cold discriminant, the comb is
   padded so [base + a] is always in range, and the owner check decides
   between the stored cell and the state's default.  Cold states binary
   search their exact exception list instead — slower, but the profile
   says they are rarely probed, and they cost no comb slack at all. *)
(* The stored exception cells are never [Error] and never the default
   (see [Packed.prepare]), so a comb or exception-list *hit* is already
   a genuine action: the validity bitset is only consulted on a miss,
   where it separates [Error] cells from default-covered ones.  That
   makes the hot hit two loads and one compare — strictly less work
   than the baseline probe, which pays the bitset load and two bounds
   checks up front on every cell. *)
let miss_code t s a =
  let b = (s * (t.n_terms + 1)) + a in
  if Char.code (Bytes.unsafe_get t.valid (b lsr 3)) land (1 lsl (b land 7)) = 0
  then 0
  else Array.unsafe_get t.defaults s

let action_code t s a =
  let base = Array.unsafe_get t.act_base s in
  if base >= 0 then begin
    if !Metrics.enabled then Metrics.incr "matcher.probe_hits_hot";
    let i = base + a in
    if Array.unsafe_get t.act_check i = s then Array.unsafe_get t.act_value i
    else miss_code t s a
  end
  else begin
    if !Metrics.enabled then Metrics.incr "matcher.probe_hits_cold";
    let lo = ref (Array.unsafe_get t.cold_off s) in
    let hi = ref (Array.unsafe_get t.cold_off (s + 1)) in
    let res = ref (-1) in
    while !lo < !hi do
      let mid = (!lo + !hi) lsr 1 in
      let c = Array.unsafe_get t.cold_col mid in
      if c = a then begin
        res := Array.unsafe_get t.cold_val mid;
        lo := !hi
      end
      else if c < a then lo := mid + 1
      else hi := mid
    done;
    if !res >= 0 then !res else miss_code t s a
  end

let decode t code =
  if code = 0 then Tables.Error
  else if code = 3 then Tables.Accept
  else
    match code land 3 with
    | 1 -> Tables.Shift (code lsr 2)
    | 2 -> Tables.Reduce [| code lsr 2 |]
    | 3 -> Tables.Reduce t.aux.((code lsr 2) - 1)
    | _ -> Tables.Error

let action t s a = decode t (action_code t s a)
let tie_candidates t i = t.aux.(i)

let has_action t s a =
  let i = (s * (t.n_terms + 1)) + a in
  Char.code (Bytes.unsafe_get t.valid (i lsr 3)) land (1 lsl (i land 7)) <> 0

let expected t s =
  let acc = ref [] in
  for a = t.n_terms downto 0 do
    if has_action t s a then acc := a :: !acc
  done;
  !acc

let goto t s n =
  let i = t.goto_base.(s) + n in
  if i < 0 || i >= Array.length t.goto_check then -1
  else if Array.unsafe_get t.goto_check i <> s then -1
  else Array.unsafe_get t.goto_value i - 1

let default_of t s =
  match decode t t.defaults.(s) with
  | Tables.Error -> None
  | other -> Some other

let grammar_digest t = t.grammar_digest
let profile_digest t = t.profile_digest

(* -- the parity proof ----------------------------------------------------- *)

(* Cell-for-cell against the dense tables, the same contract Packed
   documents: every action cell (including Error cells), every goto
   cell, every expected set.  This is what makes --specialize safe to
   enable transparently: a layout bug is caught at build/load time, not
   as wrong instructions. *)
let pp_act ppf = function
  | Tables.Error -> Fmt.string ppf "error"
  | Tables.Accept -> Fmt.string ppf "accept"
  | Tables.Shift s -> Fmt.pf ppf "shift %d" s
  | Tables.Reduce ps -> Fmt.pf ppf "reduce %a" Fmt.(array ~sep:comma int) ps

let verify t (tables : Tables.t) =
  let g = Tables.grammar tables in
  let exception Mismatch of string in
  try
    if t.grammar_digest <> Grammar.digest g then
      raise
        (Mismatch
           (Fmt.str "grammar digest %s does not match tables (%s)"
              t.grammar_digest (Grammar.digest g)));
    let n = Tables.n_states tables in
    if t.n_states <> n then
      raise (Mismatch (Fmt.str "%d states, dense has %d" t.n_states n));
    for s = 0 to n - 1 do
      for a = 0 to t.n_terms do
        let dense = tables.Tables.action.(s).(a) in
        let spec = action t s a in
        if spec <> dense then
          raise
            (Mismatch
               (Fmt.str "action(%d, %d): specialized %a, dense %a" s a pp_act
                  spec pp_act dense))
      done;
      for nt = 0 to t.n_nonterms - 1 do
        if goto t s nt <> tables.Tables.goto_.(s).(nt) then
          raise
            (Mismatch
               (Fmt.str "goto(%d, %d): specialized %d, dense %d" s nt
                  (goto t s nt)
                  tables.Tables.goto_.(s).(nt)))
      done;
      if expected t s <> Tables.expected tables s then
        raise (Mismatch (Fmt.str "expected(%d) differs" s))
    done;
    Ok ()
  with Mismatch m -> Error m

(* -- layout statistics ---------------------------------------------------- *)

type stats = {
  states : int;
  hot_states : int;
  dense_cells : int;
  spec_cells : int;
  dense_bytes : int;
  spec_bytes : int;
  ratio : float;  (* spec / dense *)
  hot_slots : int;  (* padded hot comb length *)
  cold_entries : int;
}

let stats t =
  let dense_cells = t.n_states * (t.n_terms + 1 + t.n_nonterms) in
  let word = 4 in
  let spec_cells =
    (2 * Array.length t.act_check)
    + (2 * Array.length t.goto_check)
    + (3 * t.n_states) (* act_base, goto_base, defaults *)
    + Array.length t.cold_off
    + (2 * Array.length t.cold_col)
    + ((Bytes.length t.valid + Bytes.length t.hot + word - 1) / word)
  in
  {
    states = t.n_states;
    hot_states = t.n_hot;
    dense_cells;
    spec_cells;
    dense_bytes = dense_cells * word;
    spec_bytes = spec_cells * word;
    ratio = float_of_int spec_cells /. float_of_int dense_cells;
    hot_slots = Array.length t.act_check;
    cold_entries = Array.length t.cold_col;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "%d states (%d hot): %d dense cells (%d KB) -> %d specialized cells (%d \
     KB), %.2fx; %d hot comb slots, %d cold exact entries"
    s.states s.hot_states s.dense_cells (s.dense_bytes / 1024) s.spec_cells
    (s.spec_bytes / 1024) s.ratio s.hot_slots s.cold_entries

(* -- the v3 on-disk format ------------------------------------------------ *)

let magic = "ggcg-tables-v3"

let save t path =
  let oc = open_out_bin path in
  output_string oc magic;
  Marshal.to_channel oc t [];
  close_out oc

let load ?profile (g : Grammar.t) path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m =
        try really_input_string ic (String.length magic)
        with End_of_file ->
          Fmt.failwith "%s: not a ggcg specialized table file" path
      in
      if m <> magic then
        Fmt.failwith "%s: not a ggcg-tables-v3 file (found %S)" path m;
      let t : t =
        try Marshal.from_channel ic
        with End_of_file | Failure _ ->
          Fmt.failwith "%s: truncated or corrupt specialized table file" path
      in
      if
        t.n_terms <> Symtab.n_terms g.Grammar.symtab
        || t.n_nonterms <> Symtab.n_nonterms g.Grammar.symtab
      then Fmt.failwith "%s: tables do not match this grammar" path;
      let want = Grammar.digest g in
      if t.grammar_digest <> want then
        Fmt.failwith
          "%s: stale specialized tables: built for grammar %s but this \
           grammar is %s (re-run mdgtool specialize or delete the file)"
          path t.grammar_digest want;
      (match profile with
      | Some p when Heat.digest p <> t.profile_digest ->
        Fmt.failwith
          "%s: stale specialized tables: built for profile %s but this \
           profile is %s (re-run mdgtool specialize or delete the file)"
          path t.profile_digest (Heat.digest p)
      | _ -> ());
      t)

(* -- cache entries (tables-<target>-<gdigest>-p<pdigest>.tbl) ------------- *)

let cache_load ?dir ?(target = "vax") ~(profile : Heat.t) (g : Grammar.t) =
  let file =
    Gg_tablegen.Cache.spec_path ?dir ~target
      ~profile_digest:(Heat.digest profile) g
  in
  if not (Sys.file_exists file) then None
  else
    match
      Gg_profile.Trace.phase "tables.load" (fun () -> load ~profile g file)
    with
    | t -> Some t
    | exception (Failure _ | Sys_error _) -> None

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let cache_store ?dir ?(target = "vax") (g : Grammar.t) t =
  let file =
    Gg_tablegen.Cache.spec_path ?dir ~target ~profile_digest:t.profile_digest
      g
  in
  try
    mkdir_p (Filename.dirname file);
    (* write-then-rename, like the baseline cache: a concurrent load
       never sees a torn file *)
    let tmp =
      Filename.temp_file ~temp_dir:(Filename.dirname file) "tables-" ".tmp"
    in
    save t tmp;
    Sys.rename tmp file;
    true
  with Sys_error _ -> false

(* -- the matcher engine --------------------------------------------------- *)

(* eta-expanded like Matcher.packed_engine, for direct arity-2 calls in
   the hot loop *)
let engine ~grammar (t : t) =
  let g : Grammar.t = grammar in
  {
    Matcher.eng_grammar = g;
    eng_eof = Symtab.n_terms g.Grammar.symtab;
    eng_action = (fun s a -> action t s a);
    eng_code = (fun s a -> action_code t s a);
    eng_tie = (fun i -> tie_candidates t i);
    eng_goto = (fun s n -> goto t s n);
    eng_expected = (fun s -> expected t s);
    eng_intern = Matcher.interner g.Grammar.symtab;
  }
