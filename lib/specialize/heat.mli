(** A firing-heat profile: production id → observed reduction count.

    This is the measurement Samuelsson's example-based table
    optimisation starts from — which productions a workload actually
    fires, and how hard.  [mdgtool heat --json] writes it; the
    specializer consumes it; its {!digest} keys specialized table cache
    entries, so the canonical form must be stable: counts are merged,
    non-positive entries dropped, and the digest is order- and
    formatting-independent. *)

type t = private {
  total : int;  (** the sum of all counts *)
  counts : (int * int) list;
      (** (production id, firing count), count descending then id
          ascending — the heat order *)
}

val empty : t

(** Canonicalise: duplicate ids summed, entries with non-positive
    counts or negative ids dropped, total recomputed.  Out-of-range
    production ids are preserved (the consumer ignores them), so the
    digest does not depend on any particular grammar. *)
val of_counts : (int * int) list -> t

val count : t -> int -> int

(** MD5 over the canonical content; equal profiles digest equally
    whatever their source formatting or ordering. *)
val digest : t -> string

(** Parse the [mdgtool heat --json] document
    [{"total": N, "productions": [{"id": I, "count": C}, ...]}].
    Raises [Failure] on malformed input. *)
val parse : string -> t

val load : string -> t

(** Render in the same document shape [parse] reads; byte-deterministic
    for a given profile. *)
val to_json_string : t -> string

val save : t -> string -> unit
val pp : t Fmt.t
