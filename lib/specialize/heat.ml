open Import

type t = {
  total : int;
  counts : (int * int) list;  (* count desc, then id asc *)
}

let order (ia, ca) (ib, cb) =
  match Int.compare cb ca with 0 -> Int.compare ia ib | c -> c

(* Canonicalise whatever the caller hands us: duplicate ids are summed,
   non-positive counts dropped (an adversarial profile must not be able
   to make two equal workloads digest differently), the total recomputed
   from what survives.  Out-of-range production ids are kept — the
   consumer ({!Specialize.build}) ignores ids its grammar lacks, and
   dropping them here would make the digest grammar-dependent. *)
let of_counts raw =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (id, c) ->
      if c > 0 && id >= 0 then
        let k = try Hashtbl.find tbl id with Not_found -> 0 in
        Hashtbl.replace tbl id (k + c))
    raw;
  let counts = Hashtbl.fold (fun id c acc -> (id, c) :: acc) tbl [] in
  let counts = List.sort order counts in
  { total = List.fold_left (fun a (_, c) -> a + c) 0 counts; counts }

let empty = { total = 0; counts = [] }
let count t id = try List.assoc id t.counts with Not_found -> 0

(* The digest is over the canonical content, in id order, so any two
   files carrying the same firing counts key the same cache entry
   regardless of formatting or ordering. *)
let digest t =
  let b = Buffer.create 256 in
  Buffer.add_string b "heat-v1";
  List.iter
    (fun (id, c) -> Buffer.add_string b (Fmt.str "|%d:%d" id c))
    (List.sort compare t.counts);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* the `mdgtool heat --json` document:
   {"total": N, "productions": [{"id": I, "count": C}, ...]} *)
let of_json j =
  match Option.bind (Json.member "productions" j) Json.to_list with
  | None -> Fmt.failwith "heat profile: no \"productions\" array"
  | Some prods ->
    of_counts
      (List.map
         (fun p ->
           let field name =
             match Option.bind (Json.member name p) Json.to_int with
             | Some v -> v
             | None ->
               Fmt.failwith "heat profile: production without %S" name
           in
           (field "id", field "count"))
         prods)

let parse text =
  match Json.parse text with
  | j -> of_json j
  | exception Json.Parse_error m -> Fmt.failwith "heat profile: %s" m

let load path =
  match Json.parse_file path with
  | j -> of_json j
  | exception Json.Parse_error m -> Fmt.failwith "%s: %s" path m

let to_json_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Fmt.str "{\n \"total\": %d,\n \"productions\": [\n" t.total);
  List.iteri
    (fun i (id, c) ->
      Buffer.add_string b
        (Fmt.str "  {\"id\": %d, \"count\": %d}%s\n" id c
           (if i = List.length t.counts - 1 then "" else ",")))
    t.counts;
  Buffer.add_string b " ]\n}\n";
  Buffer.contents b

let save t path =
  let oc = open_out_bin path in
  output_string oc (to_json_string t);
  close_out oc

let pp ppf t =
  Fmt.pf ppf "%d reductions over %d productions (digest %s)" t.total
    (List.length t.counts) (digest t)
