open Import

(** Profile-guided table specialization.

    The comb-packed tables ({!Gg_tablegen.Packed}) lay rows out
    densest-first — an order fixed at construction, indifferent to what
    a workload actually fires.  A heat profile ({!Heat}, from [mdgtool
    heat --json]) says otherwise: a handful of productions dominate the
    reductions (the ROADMAP's "top 5 cover 50%" observation, after
    Samuelsson's example-based table optimisation).  This pass reshapes
    the packed representation around that observation:

    {ul
    {- {e Hot} states — the smallest heat-first prefix covering ~90% of
       the estimated probe heat — are comb-packed {e hottest-first}, so
       the workload's working set lands in the low, cache-resident
       slots, and the comb is padded past every hot row's reach so the
       per-token probe runs with no bounds check at all.}
    {- {e Cold} states leave the comb entirely: each keeps its exact
       exception list, binary-searched on probe.  Exactness is free and
       cold rows cost no comb slack.}}

    The result decodes {e cell-for-cell identically} to the dense
    table — same actions, same [Error] cells, same expected sets — by
    construction (it starts from {!Gg_tablegen.Packed.prepare}, the
    same cell preparation the baseline packs) and by proof ({!verify},
    run before any specialized table is cached or served).  Assembly
    out of a specialized compiler is byte-identical; only the probe
    locality changes. *)

type t

(** The default hot-partition coverage share (0.9). *)
val default_coverage : float

(** [build ~profile tables] — specialize the dense [tables] around the
    profile.  [coverage] is the share of estimated probe heat the hot
    partition must cover (default 0.9).  A profile with no usable heat
    (empty, or only foreign production ids) degenerates to every state
    hot — the baseline layout.  Exact for {e any} profile; the profile
    only steers layout. *)
val build : ?coverage:float -> profile:Heat.t -> Tables.t -> t

(** Same integer-code contract as {!Gg_tablegen.Packed.action_code}.
    When {!Gg_profile.Metrics.enabled}, each non-error probe bumps
    [matcher.probe_hits_hot] or [matcher.probe_hits_cold] — the
    measured locality split. *)
val action_code : t -> int -> int -> int

val action : t -> int -> int -> Tables.action
val tie_candidates : t -> int -> int array
val has_action : t -> int -> int -> bool
val expected : t -> int -> int list
val default_of : t -> int -> Tables.action option
val goto : t -> int -> int -> int

(** Is the state on the hot (padded comb) path? *)
val is_hot : t -> int -> bool

val grammar_digest : t -> string

(** The {!Heat.digest} of the profile this table was specialized for —
    the third cache-key component. *)
val profile_digest : t -> string

(** Cell-for-cell parity against the dense tables: every action cell
    (including [Error]), every goto, every expected set.  [Error _]
    names the first differing cell. *)
val verify : t -> Tables.t -> (unit, string) result

type stats = {
  states : int;
  hot_states : int;
  dense_cells : int;
  spec_cells : int;  (** slots used by all arrays + bitsets *)
  dense_bytes : int;  (** at one word per cell *)
  spec_bytes : int;
  ratio : float;  (** spec / dense *)
  hot_slots : int;  (** padded hot comb length *)
  cold_entries : int;  (** exact cold exception cells *)
}

val stats : t -> stats
val pp_stats : stats Fmt.t

(** The [ggcg-tables-v3] on-disk format: magic, then the marshalled
    tables embedding both the grammar digest and the profile digest. *)
val save : t -> string -> unit

(** Loads and validates: wrong magic, truncation, symbol-count or
    grammar-digest mismatch raise [Failure]; passing [profile]
    additionally rejects a file specialized for a different profile. *)
val load : ?profile:Heat.t -> Gg_grammar.Grammar.t -> string -> t

(** The specialized-table cache entry for (target, grammar, profile),
    named by {!Gg_tablegen.Cache.spec_path}.  [cache_load] returns
    [None] if absent, stale or unreadable; [cache_store] is atomic and
    returns [false] if the directory is not writable. *)
val cache_load :
  ?dir:string ->
  ?target:string ->
  profile:Heat.t ->
  Gg_grammar.Grammar.t ->
  t option

val cache_store : ?dir:string -> ?target:string -> Gg_grammar.Grammar.t -> t -> bool

(** A {!Gg_matcher.Matcher.engine} over the specialized table,
    behaviourally identical to the packed engine (same values, traces,
    rejects and expected sets). *)
val engine : grammar:Gg_grammar.Grammar.t -> t -> Gg_matcher.Matcher.engine
