(* Short aliases for modules used throughout this library. *)
module Grammar = Gg_grammar.Grammar
module Symtab = Gg_grammar.Symtab
module Tables = Gg_tablegen.Tables
module Packed = Gg_tablegen.Packed
module Json = Gg_profile.Json
module Metrics = Gg_profile.Metrics
